//! Power-state model of the mobile device.
//!
//! §5.2 of the paper reads power numbers off a Monsoon Power Monitor: "the
//! smartphone consumes about 300 mW for idle state, 1350 mW for waiting
//! signals, 2000 mW for data reception, and 2000 mW to 5000 mW for data
//! transmission" — and Fig. 8 plots those states over time. This module
//! models the same state machine; energy is the integral of state power
//! over the simulated timeline.

use offload_obs::{Collector, EventKind, PowerLane};

/// What the (mobile) device is doing during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerState {
    /// Screen-on idle.
    Idle,
    /// CPU busy executing locally.
    Compute,
    /// Radio up, waiting for the server (the long plateaus of Fig. 8(a)).
    Waiting,
    /// Receiving data.
    Receive,
    /// Transmitting data.
    Transmit,
}

impl PowerState {
    /// The obs-crate mirror of this state.
    pub fn lane(self) -> PowerLane {
        match self {
            PowerState::Idle => PowerLane::Idle,
            PowerState::Compute => PowerLane::Compute,
            PowerState::Waiting => PowerLane::Waiting,
            PowerState::Receive => PowerLane::Receive,
            PowerState::Transmit => PowerLane::Transmit,
        }
    }
}

/// Power draw per state, in milliwatts.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSpec {
    /// Idle draw.
    pub idle_mw: f64,
    /// Local-computation draw.
    pub compute_mw: f64,
    /// Waiting-for-signal draw.
    pub waiting_mw: f64,
    /// Reception draw.
    pub receive_mw: f64,
    /// Transmission draw (average; the paper observes 2000–5000 mW).
    pub transmit_mw: f64,
}

impl PowerSpec {
    /// The Galaxy S5 numbers reported in §5.2.
    pub fn galaxy_s5() -> Self {
        PowerSpec {
            idle_mw: 300.0,
            compute_mw: 3400.0,
            waiting_mw: 1350.0,
            receive_mw: 2000.0,
            transmit_mw: 3200.0,
        }
    }

    /// A mains-powered device: power is modelled but irrelevant for the
    /// battery experiments (the paper does not meter the server).
    pub fn mains_powered() -> Self {
        PowerSpec {
            idle_mw: 15_000.0,
            compute_mw: 84_000.0,
            waiting_mw: 20_000.0,
            receive_mw: 22_000.0,
            transmit_mw: 24_000.0,
        }
    }

    /// Power draw of a state in milliwatts.
    pub fn draw_mw(&self, state: PowerState) -> f64 {
        match state {
            PowerState::Idle => self.idle_mw,
            PowerState::Compute => self.compute_mw,
            PowerState::Waiting => self.waiting_mw,
            PowerState::Receive => self.receive_mw,
            PowerState::Transmit => self.transmit_mw,
        }
    }
}

/// One interval of the device timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerInterval {
    /// Interval start, seconds from program start.
    pub start_s: f64,
    /// Interval length in seconds.
    pub duration_s: f64,
    /// Device state during the interval.
    pub state: PowerState,
}

/// An append-only timeline of power states with energy integration —
/// the simulated Monsoon monitor.
#[derive(Debug, Clone, Default)]
pub struct PowerTimeline {
    intervals: Vec<PowerInterval>,
    cursor_s: f64,
}

impl PowerTimeline {
    /// An empty timeline starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an interval of `state` lasting `duration_s` seconds.
    pub fn push(&mut self, state: PowerState, duration_s: f64) {
        assert!(duration_s >= 0.0, "negative duration");
        if duration_s == 0.0 {
            return;
        }
        // Merge adjacent intervals in the same state, keeping traces small.
        if let Some(last) = self.intervals.last_mut() {
            if last.state == state {
                last.duration_s += duration_s;
                self.cursor_s += duration_s;
                return;
            }
        }
        self.intervals.push(PowerInterval {
            start_s: self.cursor_s,
            duration_s,
            state,
        });
        self.cursor_s += duration_s;
    }

    /// Like [`push`](PowerTimeline::push), additionally emitting the
    /// state transition to an observability collector, stamped with the
    /// timeline cursor at the moment the interval starts. Replaying the
    /// emitted events through `push` reconstructs this timeline exactly
    /// (same f64 durations in the same order).
    pub fn push_traced(&mut self, obs: &mut dyn Collector, state: PowerState, duration_s: f64) {
        if duration_s > 0.0 {
            obs.record(
                self.cursor_s,
                EventKind::Power {
                    state: state.lane(),
                    duration_s,
                },
            );
        }
        self.push(state, duration_s);
    }

    /// Total timeline length in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.cursor_s
    }

    /// Energy consumed in millijoules under `spec`.
    pub fn energy_mj(&self, spec: &PowerSpec) -> f64 {
        self.intervals
            .iter()
            .map(|iv| spec.draw_mw(iv.state) * iv.duration_s)
            .sum()
    }

    /// The recorded intervals.
    pub fn intervals(&self) -> &[PowerInterval] {
        &self.intervals
    }

    /// Sample the instantaneous power at `t_s` seconds (idle outside the
    /// recorded range) — how Fig. 8's power-over-time curves are produced.
    pub fn sample_mw(&self, spec: &PowerSpec, t_s: f64) -> f64 {
        for iv in &self.intervals {
            if t_s >= iv.start_s && t_s < iv.start_s + iv.duration_s {
                return spec.draw_mw(iv.state);
            }
        }
        spec.idle_mw
    }

    /// Resample the whole timeline at a fixed step, yielding `(t, mW)`
    /// pairs — the series plotted in Fig. 8.
    pub fn resample(&self, spec: &PowerSpec, step_s: f64) -> Vec<(f64, f64)> {
        assert!(step_s > 0.0);
        let mut out = Vec::new();
        let mut t = 0.0;
        while t < self.total_seconds() {
            out.push((t, self.sample_mw(spec, t)));
            t += step_s;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_integrates_states() {
        let spec = PowerSpec::galaxy_s5();
        let mut tl = PowerTimeline::new();
        tl.push(PowerState::Compute, 2.0);
        tl.push(PowerState::Waiting, 1.0);
        let expect = 3400.0 * 2.0 + 1350.0;
        assert!((tl.energy_mj(&spec) - expect).abs() < 1e-9);
        assert!((tl.total_seconds() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn adjacent_same_state_intervals_merge() {
        let mut tl = PowerTimeline::new();
        tl.push(PowerState::Receive, 0.5);
        tl.push(PowerState::Receive, 0.5);
        tl.push(PowerState::Idle, 0.1);
        assert_eq!(tl.intervals().len(), 2);
        assert!((tl.intervals()[0].duration_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_reads_the_active_state() {
        let spec = PowerSpec::galaxy_s5();
        let mut tl = PowerTimeline::new();
        tl.push(PowerState::Compute, 1.0);
        tl.push(PowerState::Waiting, 1.0);
        assert_eq!(tl.sample_mw(&spec, 0.5), 3400.0);
        assert_eq!(tl.sample_mw(&spec, 1.5), 1350.0);
        assert_eq!(tl.sample_mw(&spec, 99.0), 300.0);
    }

    #[test]
    fn resample_produces_series() {
        let spec = PowerSpec::galaxy_s5();
        let mut tl = PowerTimeline::new();
        tl.push(PowerState::Compute, 1.0);
        let series = tl.resample(&spec, 0.25);
        assert_eq!(series.len(), 4);
        assert!(series.iter().all(|(_, p)| *p == 3400.0));
    }

    #[test]
    fn zero_duration_is_dropped() {
        let mut tl = PowerTimeline::new();
        tl.push(PowerState::Idle, 0.0);
        assert!(tl.intervals().is_empty());
    }

    #[test]
    fn traced_push_replays_to_identical_timeline() {
        let mut obs = offload_obs::TraceCollector::new();
        let mut tl = PowerTimeline::new();
        tl.push_traced(&mut obs, PowerState::Compute, 0.1);
        tl.push_traced(&mut obs, PowerState::Waiting, 0.05);
        tl.push_traced(&mut obs, PowerState::Waiting, 0.0); // dropped, no event
        tl.push_traced(&mut obs, PowerState::Receive, 0.3);
        let recs = obs.records();
        assert_eq!(recs.len(), 3);
        let mut replay = PowerTimeline::new();
        for r in recs {
            if let EventKind::Power { state, duration_s } = r.kind {
                let st = match state {
                    PowerLane::Idle => PowerState::Idle,
                    PowerLane::Compute => PowerState::Compute,
                    PowerLane::Waiting => PowerState::Waiting,
                    PowerLane::Receive => PowerState::Receive,
                    PowerLane::Transmit => PowerState::Transmit,
                };
                replay.push(st, duration_s);
            }
        }
        assert_eq!(replay.intervals(), tl.intervals());
        assert_eq!(
            replay.total_seconds().to_bits(),
            tl.total_seconds().to_bits()
        );
    }
}
