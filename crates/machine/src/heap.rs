//! First-fit free-list allocator over a simulated address range.
//!
//! One instance backs the *unified heap* (`u_malloc`, shared by both
//! devices through the UVA manager) and one backs each device-local heap
//! (plain `malloc` before the memory unifier rewrites it). Metadata lives
//! on the Rust side; the simulated memory only sees the payload bytes.

use std::collections::BTreeMap;

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The arena is exhausted.
    OutOfMemory {
        /// Requested size.
        size: u64,
    },
    /// `free` of an address that was never allocated (or double free).
    InvalidFree {
        /// The bad address.
        addr: u64,
    },
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::OutOfMemory { size } => write!(f, "heap exhausted allocating {size} bytes"),
            HeapError::InvalidFree { addr } => write!(f, "invalid free of {addr:#x}"),
        }
    }
}

impl std::error::Error for HeapError {}

/// A first-fit allocator managing `[base, end)`.
#[derive(Debug, Clone)]
pub struct HeapAllocator {
    base: u64,
    end: u64,
    /// Free runs: start -> length, coalesced.
    free: BTreeMap<u64, u64>,
    /// Live allocations: start -> length.
    live: BTreeMap<u64, u64>,
    /// High-water mark of bytes in use.
    peak_bytes: u64,
    in_use: u64,
}

const ALIGN: u64 = 16;

impl HeapAllocator {
    /// An allocator over `[base, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or unaligned.
    pub fn new(base: u64, end: u64) -> Self {
        assert!(base < end, "empty arena");
        assert_eq!(base % ALIGN, 0, "unaligned base");
        let mut free = BTreeMap::new();
        free.insert(base, end - base);
        HeapAllocator {
            base,
            end,
            free,
            live: BTreeMap::new(),
            peak_bytes: 0,
            in_use: 0,
        }
    }

    /// Arena base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Arena end address (exclusive).
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Bytes currently allocated.
    pub fn bytes_in_use(&self) -> u64 {
        self.in_use
    }

    /// Peak bytes ever allocated.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// `true` if `addr` is inside a live allocation.
    pub fn owns(&self, addr: u64) -> bool {
        self.live
            .range(..=addr)
            .next_back()
            .is_some_and(|(start, len)| addr < start + len)
    }

    /// Allocate `size` bytes (16-byte aligned; zero-size requests round up
    /// to one unit).
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] if no free run fits.
    pub fn alloc(&mut self, size: u64) -> Result<u64, HeapError> {
        let size = size.max(1).div_ceil(ALIGN) * ALIGN;
        let slot = self
            .free
            .iter()
            .find(|(_, len)| **len >= size)
            .map(|(start, len)| (*start, *len));
        let Some((start, len)) = slot else {
            return Err(HeapError::OutOfMemory { size });
        };
        self.free.remove(&start);
        if len > size {
            self.free.insert(start + size, len - size);
        }
        self.live.insert(start, size);
        self.in_use += size;
        self.peak_bytes = self.peak_bytes.max(self.in_use);
        Ok(start)
    }

    /// Free a previous allocation.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidFree`] if `addr` is not a live allocation start.
    pub fn free(&mut self, addr: u64) -> Result<(), HeapError> {
        let Some(len) = self.live.remove(&addr) else {
            return Err(HeapError::InvalidFree { addr });
        };
        self.in_use -= len;
        // Coalesce with neighbours.
        let mut start = addr;
        let mut length = len;
        if let Some((&prev_start, &prev_len)) = self.free.range(..addr).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                start = prev_start;
                length += prev_len;
            }
        }
        if let Some(&next_len) = self.free.get(&(addr + len)) {
            self.free.remove(&(addr + len));
            length += next_len;
        }
        self.free.insert(start, length);
        Ok(())
    }

    /// The size of the live allocation starting at `addr`, if any.
    pub fn allocation_size(&self, addr: u64) -> Option<u64> {
        self.live.get(&addr).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut h = HeapAllocator::new(0x1000, 0x2000);
        let a = h.alloc(100).unwrap();
        let b = h.alloc(200).unwrap();
        assert_ne!(a, b);
        assert!(h.owns(a) && h.owns(b + 100));
        h.free(a).unwrap();
        h.free(b).unwrap();
        assert_eq!(h.bytes_in_use(), 0);
        assert_eq!(h.live_count(), 0);
    }

    #[test]
    fn coalescing_allows_reuse() {
        let mut h = HeapAllocator::new(0x1000, 0x1000 + 4 * ALIGN * 4);
        let a = h.alloc(ALIGN * 4).unwrap();
        let b = h.alloc(ALIGN * 4).unwrap();
        let c = h.alloc(ALIGN * 4).unwrap();
        h.free(b).unwrap();
        h.free(a).unwrap();
        h.free(c).unwrap();
        // After coalescing everything, one big allocation fits again.
        let big = h.alloc(ALIGN * 12).unwrap();
        assert_eq!(big, 0x1000);
    }

    #[test]
    fn out_of_memory() {
        let mut h = HeapAllocator::new(0x1000, 0x1100);
        assert!(h.alloc(0x80).is_ok());
        assert!(matches!(h.alloc(0x200), Err(HeapError::OutOfMemory { .. })));
    }

    #[test]
    fn invalid_and_double_free() {
        let mut h = HeapAllocator::new(0x1000, 0x2000);
        let a = h.alloc(8).unwrap();
        assert!(matches!(h.free(a + 4), Err(HeapError::InvalidFree { .. })));
        h.free(a).unwrap();
        assert!(matches!(h.free(a), Err(HeapError::InvalidFree { .. })));
    }

    #[test]
    fn peak_tracking() {
        let mut h = HeapAllocator::new(0x1000, 0x100000);
        let a = h.alloc(1000).unwrap();
        let _b = h.alloc(2000).unwrap();
        h.free(a).unwrap();
        assert!(h.peak_bytes() >= 3000);
        assert!(h.bytes_in_use() < h.peak_bytes());
    }

    #[test]
    fn zero_size_allocations_are_distinct() {
        let mut h = HeapAllocator::new(0x1000, 0x2000);
        let a = h.alloc(0).unwrap();
        let b = h.alloc(0).unwrap();
        assert_ne!(a, b);
    }
}
