//! The function filter (§3.1), rewired on top of the static analyses.
//!
//! A region is *machine specific* — and therefore unoffloadable — if it
//! contains an assembly instruction, a system call, an unknown external
//! library call, or an I/O instruction. I/O instructions with remote
//! replacements (§3.4: output functions and prefetchable file streams) are
//! exempt; interactive inputs (`scanf`, `getchar`) are not. Machine-
//! specific taint propagates from callees to callers: the paper rules out
//! `runGame` and `main` because they (transitively) call
//! `getPlayerTurn`'s `scanf`.
//!
//! Indirect calls are resolved through the Andersen-style points-to
//! analysis ([`PointsTo`]): a call through a pointer whose target set is
//! *bounded* taints only if one of the possible targets is tainted, and an
//! *unbounded* pointer (provenance lost, externally fabricated) taints
//! unconditionally — the filter is sound for function pointers without
//! giving up on them wholesale.
//!
//! Every taint verdict records the instruction that caused it and, for
//! call-propagated taint, which callee it came through, so
//! [`FilterResult::reason_chain`] can explain a verdict the way the
//! `reproduce analyze` subcommand prints it.

use std::collections::{BTreeMap, BTreeSet};

use offload_ir::analysis::pointsto::{CallSite, CallTargets, PointsTo};
use offload_ir::diag::Site;
use offload_ir::{BlockId, Callee, FuncId, Inst, Module};

/// Why a function is machine specific.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineSpecificCause {
    /// Contains inline assembly.
    InlineAsm,
    /// Contains a raw system call.
    Syscall,
    /// Calls (or is) an external function with no body.
    UnknownExternal(String),
    /// Calls an I/O builtin with no remote replacement.
    InteractiveIo(String),
    /// Directly calls the named machine-specific function (taint).
    Calls(FuncId),
    /// Makes an indirect call whose bounded target set contains the named
    /// machine-specific function.
    CallsViaPointer(FuncId),
    /// Makes an indirect call whose target set the points-to analysis
    /// could not bound.
    IndirectUnbounded,
}

impl MachineSpecificCause {
    /// The tainted callee this cause propagates from, if it is a
    /// call-propagation cause.
    pub fn via_callee(&self) -> Option<FuncId> {
        match self {
            MachineSpecificCause::Calls(f) | MachineSpecificCause::CallsViaPointer(f) => Some(*f),
            _ => None,
        }
    }
}

/// Filter verdicts for every function in a module.
#[derive(Debug, Clone, Default)]
pub struct FilterResult {
    /// Machine-specific functions and the (first) reason.
    pub tainted: BTreeMap<FuncId, MachineSpecificCause>,
    /// The instruction that produced each function's taint (absent for
    /// external declarations, which have no body to point into).
    pub sites: BTreeMap<FuncId, Site>,
    /// Every indirect call site with its points-to resolution.
    pub indirect: BTreeMap<CallSite, CallTargets>,
}

impl FilterResult {
    /// `true` if `f` may be offloaded.
    pub fn is_offloadable(&self, f: FuncId) -> bool {
        !self.tainted.contains_key(&f)
    }

    /// Number of machine-specific functions.
    pub fn tainted_count(&self) -> usize {
        self.tainted.len()
    }

    /// Why `f` is tainted, if it is.
    pub fn cause(&self, f: FuncId) -> Option<&MachineSpecificCause> {
        self.tainted.get(&f)
    }

    /// The chain of functions `f`'s taint propagated through, starting at
    /// `f` and ending at the function with the primal (non-call) cause.
    /// Empty if `f` is offloadable.
    pub fn reason_chain(&self, f: FuncId) -> Vec<FuncId> {
        let mut chain = Vec::new();
        let mut seen = BTreeSet::new();
        let mut cur = f;
        while let Some(cause) = self.tainted.get(&cur) {
            if !seen.insert(cur) {
                break; // defensive: cause links should not cycle
            }
            chain.push(cur);
            match cause.via_callee() {
                Some(next) => cur = next,
                None => break,
            }
        }
        chain
    }

    /// Resolution of the indirect call at (`func`, `block`, `inst`), if
    /// that site exists.
    pub fn indirect_targets(
        &self,
        func: FuncId,
        block: BlockId,
        inst: u32,
    ) -> Option<&CallTargets> {
        self.indirect.get(&CallSite { func, block, inst })
    }

    /// How many indirect sites resolved to bounded / unbounded sets.
    pub fn indirect_counts(&self) -> (usize, usize) {
        let bounded = self.indirect.values().filter(|t| t.is_bounded()).count();
        (bounded, self.indirect.len() - bounded)
    }
}

/// Run the function filter over `module`, computing the points-to
/// analysis internally.
///
/// `allow_remote_io` reflects the §3.4 remote I/O optimization: when
/// `true` (the paper's configuration), I/O builtins with remote
/// replacements do not taint; when `false`, *any* I/O taints — the
/// coverage collapse the paper describes ("the function filter excludes
/// most of the IR codes from offloading targets") and the remote-I/O
/// ablation measures.
pub fn run_filter(module: &Module, allow_remote_io: bool) -> FilterResult {
    let pt = PointsTo::analyze(module);
    run_filter_with(module, allow_remote_io, &pt)
}

/// Run the function filter against an already-computed [`PointsTo`]
/// result (the compile pipeline computes it once in its analysis phase).
pub fn run_filter_with(module: &Module, allow_remote_io: bool, pt: &PointsTo) -> FilterResult {
    let mut tainted: BTreeMap<FuncId, MachineSpecificCause> = BTreeMap::new();
    let mut sites: BTreeMap<FuncId, Site> = BTreeMap::new();

    // External declarations are machine specific by definition.
    for (id, func) in module.iter_functions() {
        if func.is_declaration() {
            tainted.insert(id, MachineSpecificCause::UnknownExternal(func.name.clone()));
        }
    }

    // One monotone pass to fixpoint: a function's first (in instruction
    // order) disqualifying instruction becomes its recorded cause. Call
    // causes name the offending callee, so verdicts form reason chains.
    loop {
        let mut changed = false;
        for (id, func) in module.iter_functions() {
            if tainted.contains_key(&id) {
                continue;
            }
            'body: for (bid, block) in func.iter_blocks() {
                for (i, inst) in block.insts.iter().enumerate() {
                    let cause = match inst {
                        Inst::InlineAsm { .. } => Some(MachineSpecificCause::InlineAsm),
                        Inst::Syscall { .. } => Some(MachineSpecificCause::Syscall),
                        Inst::Call {
                            callee: Callee::Builtin(b),
                            ..
                        } => {
                            if b.is_machine_specific()
                                && (!allow_remote_io || b.remote_replacement().is_none())
                            {
                                Some(MachineSpecificCause::InteractiveIo(b.name().into()))
                            } else {
                                None
                            }
                        }
                        Inst::Call {
                            callee: Callee::Direct(g),
                            ..
                        } => {
                            if module.function(*g).is_declaration() {
                                Some(MachineSpecificCause::UnknownExternal(
                                    module.function(*g).name.clone(),
                                ))
                            } else if tainted.contains_key(g) {
                                Some(MachineSpecificCause::Calls(*g))
                            } else {
                                None
                            }
                        }
                        Inst::Call {
                            callee: Callee::Indirect(_),
                            ..
                        } => {
                            let site = CallSite {
                                func: id,
                                block: bid,
                                inst: i as u32,
                            };
                            match pt.indirect_targets(site) {
                                Some(CallTargets::Bounded(targets)) if !targets.is_empty() => {
                                    targets
                                        .iter()
                                        .find(|t| tainted.contains_key(t))
                                        .map(|t| MachineSpecificCause::CallsViaPointer(*t))
                                }
                                // Unbounded, empty (a pointer that never
                                // holds a real function — fabricated from
                                // an integer), or unanalyzed because the
                                // module mutated after analysis: stay
                                // conservative in all three cases.
                                _ => Some(MachineSpecificCause::IndirectUnbounded),
                            }
                        }
                        _ => None,
                    };
                    if let Some(cause) = cause {
                        tainted.insert(id, cause);
                        sites.insert(
                            id,
                            Site {
                                block: bid,
                                inst: i as u32,
                            },
                        );
                        changed = true;
                        break 'body;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let indirect = pt.indirect_sites().map(|(s, t)| (s, t.clone())).collect();
    FilterResult {
        tainted,
        sites,
        indirect,
    }
}

/// `true` if the given *loop body blocks* of `func_id` are free of
/// machine-specific instructions and of calls to tainted functions — loop
/// candidates are filtered at this finer grain (a function with `scanf`
/// outside the loop can still offload the loop).
pub fn loop_is_offloadable(
    module: &Module,
    filter: &FilterResult,
    func_id: FuncId,
    body: &BTreeSet<offload_ir::BlockId>,
    allow_remote_io: bool,
) -> bool {
    let func = module.function(func_id);
    for bb in body {
        for (i, inst) in func.blocks[bb.0 as usize].insts.iter().enumerate() {
            match inst {
                Inst::InlineAsm { .. } | Inst::Syscall { .. } => return false,
                Inst::Call {
                    callee: Callee::Builtin(b),
                    ..
                } if b.is_machine_specific()
                    && (!allow_remote_io || b.remote_replacement().is_none()) =>
                {
                    return false;
                }
                Inst::Call {
                    callee: Callee::Direct(g),
                    ..
                } if !filter.is_offloadable(*g) => {
                    return false;
                }
                Inst::Call {
                    callee: Callee::Indirect(_),
                    ..
                } => match filter.indirect_targets(func_id, *bb, i as u32) {
                    Some(CallTargets::Bounded(targets)) if !targets.is_empty() => {
                        if targets.iter().any(|t| !filter.is_offloadable(*t)) {
                            return false;
                        }
                    }
                    _ => return false,
                },
                _ => {}
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's chess shape: getPlayerTurn has scanf, getAITurn has
    /// printf (remotable), runGame calls both, main calls runGame.
    const CHESS: &str = "
        int maxDepth;
        double getAITurn() {
            int i; double s = 0.0;
            for (i = 0; i < maxDepth; i++) s += (double)i;
            printf(\"%f\\n\", s);
            return s;
        }
        int getPlayerTurn() { int mv; scanf(\"%d\", &mv); return mv; }
        void runGame() {
            int over = 0;
            while (!over) { over = getPlayerTurn(); getAITurn(); }
        }
        int main() { scanf(\"%d\", &maxDepth); runGame(); return 0; }";

    fn compiled() -> Module {
        offload_minic::compile(CHESS, "chess").unwrap()
    }

    #[test]
    fn paper_chess_filtering() {
        let m = compiled();
        let names = m.function_names();
        let r = run_filter(&m, true);
        assert!(r.is_offloadable(names["getAITurn"]), "printf is remotable");
        assert!(
            !r.is_offloadable(names["getPlayerTurn"]),
            "scanf is interactive"
        );
        assert!(
            !r.is_offloadable(names["runGame"]),
            "taint via getPlayerTurn"
        );
        assert!(!r.is_offloadable(names["main"]), "taint via runGame");
    }

    #[test]
    fn taint_cause_names_the_offending_callee() {
        let m = compiled();
        let names = m.function_names();
        let r = run_filter(&m, true);
        // runGame's cause is the callee that tainted it, not runGame
        // itself (the bug this rewrite fixed).
        assert_eq!(
            r.cause(names["runGame"]),
            Some(&MachineSpecificCause::Calls(names["getPlayerTurn"]))
        );
        assert!(r.sites.contains_key(&names["runGame"]));
    }

    #[test]
    fn reason_chain_walks_to_the_primal_cause() {
        let m = compiled();
        let names = m.function_names();
        let r = run_filter(&m, true);
        // main taints through scanf directly (first instruction), so its
        // chain is just [main]; runGame's chain ends at getPlayerTurn.
        let chain = r.reason_chain(names["runGame"]);
        assert_eq!(chain, vec![names["runGame"], names["getPlayerTurn"]]);
        assert!(matches!(
            r.cause(names["getPlayerTurn"]),
            Some(MachineSpecificCause::InteractiveIo(n)) if n == "scanf"
        ));
        assert!(r.reason_chain(names["getAITurn"]).is_empty());
    }

    #[test]
    fn without_remote_io_printf_taints() {
        let m = compiled();
        let names = m.function_names();
        let r = run_filter(&m, false);
        assert!(
            !r.is_offloadable(names["getAITurn"]),
            "without the remote-I/O optimization printf is machine specific"
        );
    }

    #[test]
    fn asm_and_syscall_taint() {
        let m = offload_minic::compile(
            "void low() { asm(\"wfi\"); }\n\
             long ticks() { return syscall(42); }\n\
             int pure(int x) { return x * 2; }\n\
             int main() { low(); ticks(); return pure(5); }",
            "t",
        )
        .unwrap();
        let names = m.function_names();
        let r = run_filter(&m, true);
        assert!(!r.is_offloadable(names["low"]));
        assert!(!r.is_offloadable(names["ticks"]));
        assert!(r.is_offloadable(names["pure"]));
        assert!(matches!(
            r.tainted[&names["low"]],
            MachineSpecificCause::InlineAsm
        ));
        assert!(matches!(
            r.tainted[&names["ticks"]],
            MachineSpecificCause::Syscall
        ));
    }

    #[test]
    fn external_declarations_taint_callers() {
        let mut m = offload_minic::compile("int main() { return 0; }", "t").unwrap();
        let ext = m.declare_function("mystery", vec![], offload_ir::Type::Void);
        let r = run_filter(&m, true);
        assert!(!r.is_offloadable(ext));
        assert!(matches!(
            r.tainted[&ext],
            MachineSpecificCause::UnknownExternal(ref n) if n == "mystery"
        ));
    }

    #[test]
    fn file_io_is_remotable() {
        let m = offload_minic::compile(
            "int load(char *buf) { int fd = fopen(\"f\", \"r\"); long n = fread(buf, 1, 8, fd); fclose(fd); return (int)n; }\n\
             int main() { char b[8]; return load(b); }",
            "t",
        )
        .unwrap();
        let names = m.function_names();
        let r = run_filter(&m, true);
        assert!(
            r.is_offloadable(names["load"]),
            "file streams are prefetchable (§3.4)"
        );
    }

    #[test]
    fn indirect_call_to_clean_targets_stays_offloadable() {
        let m = offload_minic::compile(
            "typedef double (*FN)(double);\n\
             double half(double x) { return x / 2.0; }\n\
             double twice(double x) { return x * 2.0; }\n\
             FN table[2] = { half, twice };\n\
             double apply(int which, double x) {\n\
               FN f = table[which];\n\
               return f(x);\n\
             }\n\
             int main() { int w; scanf(\"%d\", &w); printf(\"%f\\n\", apply(w, 3.0)); return 0; }",
            "t",
        )
        .unwrap();
        let names = m.function_names();
        let r = run_filter(&m, true);
        assert!(
            r.is_offloadable(names["apply"]),
            "both targets are clean; bounded indirect call must not taint: {:?}",
            r.cause(names["apply"])
        );
        let (bounded, unbounded) = r.indirect_counts();
        assert_eq!((bounded, unbounded), (1, 0));
    }

    #[test]
    fn indirect_call_to_tainted_target_taints_with_callee_named() {
        let m = offload_minic::compile(
            "typedef double (*FN)(double);\n\
             double half(double x) { return x / 2.0; }\n\
             double ask(double x) { int v; scanf(\"%d\", &v); return x + (double)v; }\n\
             FN table[2] = { half, ask };\n\
             double apply(int which, double x) {\n\
               FN f = table[which];\n\
               return f(x);\n\
             }\n\
             int main() { int w; scanf(\"%d\", &w); printf(\"%f\\n\", apply(w, 3.0)); return 0; }",
            "t",
        )
        .unwrap();
        let names = m.function_names();
        let r = run_filter(&m, true);
        assert_eq!(
            r.cause(names["apply"]),
            Some(&MachineSpecificCause::CallsViaPointer(names["ask"])),
            "the precise tainted callee must be named"
        );
        let chain = r.reason_chain(names["apply"]);
        assert_eq!(chain, vec![names["apply"], names["ask"]]);
    }

    #[test]
    fn unbounded_indirect_call_taints() {
        use offload_ir::builder::FunctionBuilder;
        use offload_ir::Type;
        let mut m = Module::new("t");
        let caller = m.declare_function("caller", vec![Type::I64], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, caller);
        let p = b.param(0);
        let fp = b.cast(
            offload_ir::CastKind::IntToPtr,
            Type::Func(Box::new(offload_ir::types::FuncSig {
                params: vec![],
                ret: Type::I32,
            }))
            .ptr_to(),
            p,
        );
        let r = b.call_indirect(fp, Type::I32, vec![]).unwrap();
        b.ret(Some(r));
        b.finish();
        let res = run_filter(&m, true);
        assert_eq!(
            res.cause(caller),
            Some(&MachineSpecificCause::IndirectUnbounded),
            "a fabricated function pointer must taint"
        );
    }

    #[test]
    fn loop_filter_is_finer_than_function_filter() {
        // main has scanf, but its hot loop does not: the loop offloads.
        let m = offload_minic::compile(
            "int main() {\n\
               int n; scanf(\"%d\", &n);\n\
               int i; long acc = 0;\n\
               for (i = 0; i < n; i++) acc += i * i;\n\
               printf(\"%d\\n\", (int)(acc % 100));\n\
               return 0;\n\
             }",
            "t",
        )
        .unwrap();
        let main = m.entry.unwrap();
        let r = run_filter(&m, true);
        assert!(!r.is_offloadable(main));
        let forest = offload_ir::analysis::LoopForest::compute(m.function(main));
        assert_eq!(forest.loops.len(), 1);
        assert!(loop_is_offloadable(
            &m,
            &r,
            main,
            &forest.loops[0].body,
            true
        ));
    }

    #[test]
    fn loop_with_tainted_indirect_call_does_not_offload() {
        let m = offload_minic::compile(
            "typedef double (*FN)(double);\n\
             double ask(double x) { int v; scanf(\"%d\", &v); return x + (double)v; }\n\
             FN table[1] = { ask };\n\
             int main() {\n\
               int n; scanf(\"%d\", &n);\n\
               int i; double acc = 0.0;\n\
               for (i = 0; i < n; i++) { FN f = table[i % 1]; acc += f(acc); }\n\
               printf(\"%f\\n\", acc);\n\
               return 0;\n\
             }",
            "t",
        )
        .unwrap();
        let main = m.entry.unwrap();
        let r = run_filter(&m, true);
        let forest = offload_ir::analysis::LoopForest::compute(m.function(main));
        assert!(!forest.loops.is_empty());
        for l in &forest.loops {
            assert!(
                !loop_is_offloadable(&m, &r, main, &l.body, true),
                "loop calling scanf through a table must not offload"
            );
        }
    }
}
