//! A tiny self-contained micro-benchmark harness (`std::time::Instant`
//! only — no external crates, usable offline).
//!
//! Two measurement modes, mirroring how the bench targets use it:
//!
//! * [`wall`] times the closure on the host clock — for substrate
//!   benchmarks (interpreter throughput, codec speed) where host
//!   performance is the quantity of interest;
//! * [`simulated`] lets the closure *return* its own measurement — for
//!   figure benchmarks that report deterministic **simulated** seconds.
//!
//! Results print as one aligned line each via [`Stats::report`].

use std::hint::black_box;
use std::time::Instant;

/// Summary of one benchmark.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Benchmark label.
    pub label: String,
    /// Samples taken.
    pub samples: usize,
    /// Closure invocations per sample.
    pub iters_per_sample: u64,
    /// Mean seconds per invocation.
    pub mean_s: f64,
    /// Fastest sample, seconds per invocation.
    pub min_s: f64,
    /// Slowest sample, seconds per invocation.
    pub max_s: f64,
    /// Bytes processed per invocation (enables a MB/s column).
    pub throughput_bytes: Option<u64>,
}

impl Stats {
    fn from_times(label: &str, per_iter: &[f64], iters: u64) -> Stats {
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().copied().fold(0.0f64, f64::max);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        Stats {
            label: label.to_string(),
            samples: per_iter.len(),
            iters_per_sample: iters,
            mean_s: mean,
            min_s: min,
            max_s: max,
            throughput_bytes: None,
        }
    }

    /// Attach a per-invocation byte count so the report shows MB/s.
    #[must_use]
    pub fn with_throughput(mut self, bytes: u64) -> Stats {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Print one aligned result line to stdout.
    pub fn report(&self) {
        let scaled = |s: f64| -> String {
            if s >= 1.0 {
                format!("{s:9.3} s ")
            } else if s >= 1e-3 {
                format!("{:9.3} ms", s * 1e3)
            } else {
                format!("{:9.3} µs", s * 1e6)
            }
        };
        let tp = match self.throughput_bytes {
            Some(b) if self.mean_s > 0.0 => {
                format!("  {:8.1} MB/s", b as f64 / self.mean_s / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "{:<44} mean {} (min {}, max {}, {}x{}){tp}",
            self.label,
            scaled(self.mean_s),
            scaled(self.min_s),
            scaled(self.max_s),
            self.samples,
            self.iters_per_sample,
        );
    }
}

fn wall_quiet<R>(label: &str, samples: usize, mut f: impl FnMut() -> R) -> Stats {
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.02 / once).ceil() as u64).clamp(1, 10_000);
    let mut per_iter = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        per_iter.push(t.elapsed().as_secs_f64() / iters as f64);
    }
    Stats::from_times(label, &per_iter, iters)
}

/// Wall-clock benchmark: calibrates an iteration count so each sample
/// runs ≥ ~20 ms, then takes `samples` samples and reports seconds per
/// invocation.
pub fn wall<R>(label: &str, samples: usize, f: impl FnMut() -> R) -> Stats {
    let stats = wall_quiet(label, samples, f);
    stats.report();
    stats
}

/// Like [`wall`], with a per-invocation byte count so the report line
/// carries a MB/s column.
pub fn wall_bytes<R>(label: &str, samples: usize, bytes: u64, f: impl FnMut() -> R) -> Stats {
    let stats = wall_quiet(label, samples, f).with_throughput(bytes);
    stats.report();
    stats
}

/// Simulated-time benchmark: the closure returns its own measurement
/// (e.g. simulated seconds from a [`native_offloader::RunReport`]).
/// Deterministic by construction, so a couple of samples suffice — the
/// min/max spread doubles as a determinism check.
pub fn simulated(label: &str, samples: usize, mut f: impl FnMut() -> f64) -> Stats {
    let per_iter: Vec<f64> = (0..samples.max(1)).map(|_| f()).collect();
    let stats = Stats::from_times(label, &per_iter, 1);
    stats.report();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_measures_something() {
        let s = wall("spin", 3, || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(s.mean_s > 0.0);
        assert!(s.min_s <= s.mean_s && s.mean_s <= s.max_s + 1e-12);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn simulated_passes_values_through() {
        let mut v = 0.0;
        let s = simulated("fake", 4, || {
            v += 1.0;
            v
        });
        assert_eq!(s.samples, 4);
        assert!((s.mean_s - 2.5).abs() < 1e-12);
        assert_eq!(s.min_s, 1.0);
        assert_eq!(s.max_s, 4.0);
    }

    #[test]
    fn throughput_column_is_attached() {
        let s = wall_bytes("noop", 1, 1_000_000, || 1);
        assert_eq!(s.throughput_bytes, Some(1_000_000));
    }
}
