//! Fuzz tests for Equation 1 and the dynamic-estimation decision
//! boundary — the logic that decides whether a user's task leaves the
//! phone at all. Inputs come from the workspace's deterministic
//! splitmix64 stream ([`offload_workloads::rng`]): identical cases every
//! run, failures reproduce by rerunning the test.

use native_offloader::compiler::estimate::{equation1, EstimateInput};
use offload_net::Link;
use offload_workloads::rng::SplitMix64;

/// A random valid estimator input (same ranges as the original
/// proptest strategy).
fn gen_input(rng: &mut SplitMix64) -> EstimateInput {
    EstimateInput {
        tm_s: 0.001 + rng.unit_f64() * (100.0 - 0.001),
        invocations: rng.range(1, 100),
        mem_bytes: rng.below(1_000_000_000),
        ratio: 1.5 + rng.unit_f64() * 18.5,
        bandwidth_bps: rng.range(1_000_000, 1_000_000_000),
    }
}

/// Tg decomposes exactly: Tg = Tideal − Tc, with both parts non-negative
/// for valid inputs.
#[test]
fn decomposition_holds() {
    let mut rng = SplitMix64::new(0xDEC0);
    for _ in 0..256 {
        let i = gen_input(&mut rng);
        let e = equation1(i);
        assert!((e.t_gain_s - (e.t_ideal_s - e.t_comm_s)).abs() < 1e-9);
        assert!(e.t_ideal_s >= 0.0);
        assert!(e.t_comm_s >= 0.0);
    }
}

/// More bandwidth never hurts: Tg is monotone non-decreasing in BW.
#[test]
fn monotone_in_bandwidth() {
    let mut rng = SplitMix64::new(0xBA2D);
    for _ in 0..256 {
        let i = gen_input(&mut rng);
        let extra = rng.range(1, 1_000_000_000);
        let better = EstimateInput {
            bandwidth_bps: i.bandwidth_bps.saturating_add(extra),
            ..i
        };
        assert!(equation1(better).t_gain_s >= equation1(i).t_gain_s - 1e-12);
    }
}

/// A faster server never hurts: Tg is monotone in R.
#[test]
fn monotone_in_ratio() {
    let mut rng = SplitMix64::new(0x4A71);
    for _ in 0..256 {
        let i = gen_input(&mut rng);
        let extra = 0.1 + rng.unit_f64() * 49.9;
        let better = EstimateInput {
            ratio: i.ratio + extra,
            ..i
        };
        assert!(equation1(better).t_gain_s >= equation1(i).t_gain_s - 1e-12);
    }
}

/// More memory or more invocations never helps.
#[test]
fn monotone_against_traffic() {
    let mut rng = SplitMix64::new(0x72AF);
    for _ in 0..256 {
        let i = gen_input(&mut rng);
        let extra_mem = rng.range(1, 1_000_000_000);
        let extra_invo = rng.range(1, 100);
        let heavier = EstimateInput {
            mem_bytes: i.mem_bytes + extra_mem,
            ..i
        };
        assert!(equation1(heavier).t_gain_s <= equation1(i).t_gain_s + 1e-12);
        let chattier = EstimateInput {
            invocations: i.invocations + extra_invo,
            ..i
        };
        assert!(equation1(chattier).t_gain_s <= equation1(i).t_gain_s + 1e-12);
    }
}

/// The runtime decision agrees with raw Equation 1 on every input: there
/// is exactly one decision boundary and it sits at Tg = 0.
#[test]
fn decision_matches_equation() {
    use native_offloader::OffloadTask;
    use offload_ir::{FuncId, Type};
    let mut rng = SplitMix64::new(0xDEC1DE);
    for _ in 0..256 {
        let tm_ms = rng.range(1, 1_000);
        let mem_kb = rng.range(1, 1_000_000);
        let task = OffloadTask {
            id: 1,
            dispatcher: FuncId(0),
            local_func: FuncId(1),
            name: "t".into(),
            params: vec![],
            ret: Type::Void,
            tm_per_invocation_s: tm_ms as f64 / 1e3,
            mem_bytes: mem_kb * 1024,
            prefetch_pages: vec![],
        };
        for link in [Link::wifi_802_11n(), Link::wifi_802_11ac()] {
            let (go, est) = native_offloader::runtime::estimator::decide(&task, 6.0, &link);
            assert_eq!(go, est.t_gain_s > 0.0);
        }
    }
}
