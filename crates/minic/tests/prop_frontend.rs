//! Property tests for the MiniC front-end: generated programs always
//! lex, parse, lower and verify — and constant-expression programs
//! evaluate correctly end to end (differential testing against a Rust
//! model of the same arithmetic).

use proptest::prelude::*;

/// A tiny expression AST we can render to MiniC *and* evaluate in Rust.
#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Neg(Box<E>),
}

fn expr() -> impl Strategy<Value = E> {
    let leaf = (-1000i32..1000).prop_map(E::Lit);
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            inner.prop_map(|a| E::Neg(Box::new(a))),
        ]
    })
}

fn render(e: &E) -> String {
    match e {
        E::Lit(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        E::Add(a, b) => format!("({} + {})", render(a), render(b)),
        E::Sub(a, b) => format!("({} - {})", render(a), render(b)),
        E::Mul(a, b) => format!("({} * {})", render(a), render(b)),
        E::Neg(a) => format!("(-{})", render(a)),
    }
}

fn eval(e: &E) -> i32 {
    match e {
        E::Lit(v) => *v,
        E::Add(a, b) => eval(a).wrapping_add(eval(b)),
        E::Sub(a, b) => eval(a).wrapping_sub(eval(b)),
        E::Mul(a, b) => eval(a).wrapping_mul(eval(b)),
        E::Neg(a) => eval(a).wrapping_neg(),
    }
}

fn run_main(src: &str) -> i64 {
    use offload_machine::{host::LocalHost, loader, target::TargetSpec, vm::{StackBank, Vm}};
    let module = offload_minic::compile(src, "prop").expect("compiles");
    offload_ir::verify::verify_module(&module).expect("verifies");
    let spec = TargetSpec::xps_8700();
    let image = loader::load(&module, &offload_ir::TargetAbi::MobileArm32.data_layout()).unwrap();
    let mut host = LocalHost::new();
    let mut vm = Vm::new(&module, &spec, image, StackBank::Mobile);
    vm.set_fuel(10_000_000);
    vm.run_entry(&mut host).expect("runs").expect("returns").as_i()
}

proptest! {
    /// Differential test: MiniC arithmetic matches Rust's wrapping i32
    /// arithmetic for arbitrary expression trees.
    #[test]
    fn expression_evaluation_matches_rust(e in expr()) {
        let expected = eval(&e);
        let src = format!("int main() {{ long v = (long)({}); return (int)(v & 255); }}", render(&e));
        let got = run_main(&src);
        prop_assert_eq!(got, (expected as i64 & 255) as i32 as i64);
    }

    /// Random for-loop sums match the closed-form model.
    #[test]
    fn loop_sums_match(n in 0i32..500, step in 1i32..7) {
        let src = format!(
            "int main() {{ int i; long acc = 0; for (i = 0; i < {n}; i += {step}) acc += i; return (int)(acc % 8191); }}"
        );
        let mut expect: i64 = 0;
        let mut i = 0;
        while i < n {
            expect += i as i64;
            i += step;
        }
        prop_assert_eq!(run_main(&src), expect % 8191);
    }

    /// Generated identifier soup never crashes the lexer/parser: they
    /// either parse or return a clean error (no panics).
    #[test]
    fn lexer_parser_total(garbage in "[a-z0-9+*/(){};= <>!&|,-]{0,200}") {
        if let Ok(tokens) = offload_minic::lexer::lex(&garbage) {
            let _ = offload_minic::parser::parse(tokens); // Ok or Err, no panic
        }
    }

    /// Struct field access roundtrips through memory for random field
    /// counts and values.
    #[test]
    fn struct_fields_roundtrip(vals in prop::collection::vec(-10_000i32..10_000, 1..8)) {
        let fields: Vec<String> = (0..vals.len()).map(|i| format!("int f{i};")).collect();
        let sets: Vec<String> = vals.iter().enumerate().map(|(i, v)| format!("s.f{i} = {v};")).collect();
        let sum: Vec<String> = (0..vals.len()).map(|i| format!("s.f{i}")).collect();
        let src = format!(
            "typedef struct {{ {} }} S;\n int main() {{ S s; {} long t = (long)({}); return (int)(t % 100003); }}",
            fields.join(" "),
            sets.join(" "),
            sum.join(" + ")
        );
        let expect: i64 = vals.iter().map(|v| *v as i64).sum();
        // C's % truncates toward zero, exactly like Rust's.
        prop_assert_eq!(run_main(&src), expect % 100003);
    }
}
