//! Determinism and byte-identity of the event-driven session core.
//!
//! The event engine multiplexes thousands of sessions over shared lanes,
//! but per-session accounting must not notice: reports and trace shards
//! are produced by the same per-session timing engine whether the run is
//! serial, farmed, or event-multiplexed, and they must be byte-identical
//! in every configuration.
//!
//! Two sweeps enforce that:
//!
//! * a fixed-seed fuzz pass permutes session *submission order* and runs
//!   the event loop at 1, 2 and 4 workers — every job's report and trace
//!   shard must match its serial reference record-for-record, and the
//!   merged trace must be identical across worker counts for the same
//!   permutation (submission order is the only ordering rule);
//! * a full-suite byte-identity pass drives all 18 workloads over both
//!   link profiles and every stream mode through
//!   [`check_evloop_equivalence`], which re-runs each job serially and
//!   compares reports field-for-field (`f64::to_bits`) and trace shards
//!   record-for-record against the event-loop run.
//!
//! The full sweeps run in the release pass; debug builds run the smoke
//! subsets below (the pattern `certificate_soundness` uses).

use std::sync::Arc;

use native_offloader::runtime::evloop::{check_evloop_equivalence, run_evloop, EvloopConfig};
use native_offloader::runtime::farm::{reports_equal, FarmJob};
use native_offloader::{CompiledApp, Offloader, PageHistory, SessionConfig, StreamMode};
use native_offloader::{RunReport, WorkloadInput};
use offload_obs::{NoopCollector, Record, TraceCollector};

/// Ring capacity for reference traces: big enough for any suite session.
const RING: usize = 1 << 20;

/// The 18-program set: the suite miniatures plus the chess program.
fn sweep_apps() -> Vec<(String, CompiledApp, WorkloadInput)> {
    let mut apps: Vec<(String, CompiledApp, WorkloadInput)> = Vec::new();
    for w in offload_workloads::all() {
        let app = w.compile().expect("compiles");
        apps.push((w.name.to_string(), app, (w.eval_input)()));
    }
    let chess_input = offload_workloads::chess::input(9, 2);
    let chess = Offloader::new()
        .compile_source(offload_workloads::chess::SOURCE, "chess", &chess_input)
        .expect("chess compiles");
    apps.push(("chess".to_string(), chess, chess_input));
    assert_eq!(apps.len(), 18, "the sweep must cover all 18 programs");
    apps
}

/// Fault-heavy session on the given link and stream mode — the same
/// shape the certificate and stream equivalence sweeps use, so streaming
/// actually exercises the multiplexer's detached-page path.
fn fault_heavy(slow: bool, mode: StreamMode, history: Option<Arc<PageHistory>>) -> SessionConfig {
    let mut cfg = if slow {
        SessionConfig::slow_network()
    } else {
        SessionConfig::fast_network()
    };
    cfg.dynamic_estimation = false;
    cfg.prefetch = false;
    cfg.stream_mode = mode;
    cfg.page_history = history;
    cfg
}

/// splitmix64 — the repo's stock deterministic PRNG for tests.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic Fisher–Yates shuffle of `0..n`.
fn permutation(n: usize, seed: &mut u64) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (splitmix64(seed) % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

/// Serial reference for each app: report plus full trace records.
fn references(
    apps: &[(String, CompiledApp, WorkloadInput)],
    cfg: &SessionConfig,
) -> Vec<(RunReport, Vec<Record>)> {
    apps.iter()
        .map(|(name, app, input)| {
            let mut obs = TraceCollector::with_capacity(RING);
            let report = app
                .run_offloaded_traced(input, cfg, &mut obs)
                .unwrap_or_else(|e| panic!("{name}: serial reference failed: {e}"));
            assert_eq!(obs.dropped(), 0, "{name}: reference ring overflowed");
            (report, obs.records())
        })
        .collect()
}

/// The fuzz body: for each seeded permutation of submission order, run
/// the event loop at every worker count and assert every job's report
/// and trace shard equals its serial reference, and that the merged
/// trace is identical across worker counts.
fn permuted_submissions_are_invariant(
    apps: &[(String, CompiledApp, WorkloadInput)],
    permutations: usize,
    worker_counts: &[usize],
) {
    let cfg = fault_heavy(false, StreamMode::Off, None);
    let refs = references(apps, &cfg);
    let mut seed = 0x0005_17ec_100f_u64;
    for round in 0..permutations {
        let perm = if round == 0 {
            (0..apps.len()).collect::<Vec<_>>()
        } else {
            permutation(apps.len(), &mut seed)
        };
        let jobs: Vec<FarmJob> = perm
            .iter()
            .map(|&a| FarmJob {
                app: &apps[a].1,
                input: apps[a].2.clone(),
                cfg: cfg.clone(),
            })
            .collect();
        let mut merged_by_workers: Vec<Vec<Record>> = Vec::new();
        for &workers in worker_counts {
            let evcfg = EvloopConfig {
                workers,
                server_slots: 16,
            };
            let ev = run_evloop(&jobs, workers, &evcfg, &mut NoopCollector)
                .expect("event-loop run succeeds");
            assert!(
                !ev.schedule.containers_grew,
                "round {round}, {workers} workers: engine allocated in steady state"
            );
            assert_eq!(ev.schedule.completions.len(), jobs.len());
            let mut merged = Vec::new();
            for (i, &a) in perm.iter().enumerate() {
                let name = &apps[a].0;
                reports_equal(&refs[a].0, &ev.farm.reports[i]).unwrap_or_else(|e| {
                    panic!("round {round}, {workers} workers, {name}: report diverged: {e}")
                });
                let shard = ev.farm.trace.shard(i).expect("trace shard per job");
                assert_eq!(
                    shard.records, refs[a].1,
                    "round {round}, {workers} workers, {name}: trace diverged"
                );
                merged.extend(shard.records.iter().cloned());
            }
            merged_by_workers.push(merged);
        }
        for pair in merged_by_workers.windows(2) {
            assert_eq!(
                pair[0], pair[1],
                "round {round}: merged trace differs across worker counts"
            );
        }
    }
}

/// Full fuzz sweep: all 18 programs, identity plus three seeded
/// permutations, 1/2/4 workers.
#[test]
#[cfg_attr(debug_assertions, ignore = "full sweep runs in the release pass")]
fn permuted_submission_order_is_byte_invariant() {
    permuted_submissions_are_invariant(&sweep_apps(), 4, &[1, 2, 4]);
}

/// Debug smoke subset of the fuzz sweep: five programs, two rounds,
/// 1 and 2 workers.
#[test]
fn permuted_submission_order_smoke() {
    let apps: Vec<_> = sweep_apps().into_iter().take(5).collect();
    permuted_submissions_are_invariant(&apps, 2, &[1, 2]);
}

/// The byte-identity body: for each link × stream mode, push all apps
/// through [`check_evloop_equivalence`] at 4 workers (serial vs farm vs
/// event loop, reports field-for-field and traces record-for-record).
fn suite_is_byte_identical(apps: &[(String, CompiledApp, WorkloadInput)], slow_links: &[bool]) {
    // Train the history predictor once per app, as the stream
    // equivalence sweep does (the "prior session" of the Markov table).
    let histories: Vec<Arc<PageHistory>> = apps
        .iter()
        .map(|(name, app, input)| {
            let mut obs = TraceCollector::with_capacity(RING);
            let _ = app
                .run_offloaded_traced(input, &fault_heavy(false, StreamMode::Off, None), &mut obs)
                .unwrap_or_else(|e| panic!("{name}: training run failed: {e}"));
            Arc::new(PageHistory::from_records(&obs.records()))
        })
        .collect();
    for &slow in slow_links {
        for mode in [
            StreamMode::Off,
            StreamMode::Static,
            StreamMode::Stride,
            StreamMode::History,
        ] {
            let jobs: Vec<FarmJob> = apps
                .iter()
                .zip(&histories)
                .map(|((_, app, input), history)| FarmJob {
                    app,
                    input: input.clone(),
                    cfg: fault_heavy(slow, mode, Some(history.clone())),
                })
                .collect();
            let evcfg = EvloopConfig {
                workers: 4,
                server_slots: 16,
            };
            check_evloop_equivalence(&jobs, &evcfg).unwrap_or_else(|e| {
                panic!(
                    "link={} mode={}: {e}",
                    if slow { "802.11n" } else { "fast" },
                    mode.name()
                )
            });
        }
    }
}

/// Full byte-identity sweep: 18 workloads × both links × all four
/// stream modes, serial vs farm(4) vs event loop.
#[test]
#[cfg_attr(debug_assertions, ignore = "full sweep runs in the release pass")]
fn suite_byte_identity_across_links_and_stream_modes() {
    suite_is_byte_identical(&sweep_apps(), &[false, true]);
}

/// Debug smoke subset of the byte-identity sweep: four programs on the
/// fast link only.
#[test]
fn suite_byte_identity_smoke() {
    let apps: Vec<_> = sweep_apps().into_iter().take(4).collect();
    suite_is_byte_identical(&apps, &[false]);
}
