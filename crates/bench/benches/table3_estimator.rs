//! Table 3 bench: the static estimator (Equation 1) and the whole target-
//! selection pipeline on the chess example.

use std::hint::black_box;

use native_offloader::compiler::estimate::{equation1, EstimateInput};
use native_offloader::{CompileConfig, Offloader};
use offload_bench::micro;
use offload_workloads::chess;

fn bench_equation1() {
    // The pure Eq. 1 math, with the Table 3 example rows.
    micro::wall("table3/equation1", 5, || {
        let rows = [
            (27.0, 1u64, 20u64),
            (26.0, 3, 12),
            (26.0, 3, 12),
            (25.0, 36, 12),
            (1.5, 3, 10),
        ];
        let mut gains = 0.0;
        for (tm, n, mb) in rows {
            let e = equation1(EstimateInput {
                tm_s: tm,
                invocations: n,
                mem_bytes: mb * 1_000_000,
                ratio: 5.0,
                bandwidth_bps: 80_000_000,
            });
            gains += e.t_gain_s;
        }
        black_box(gains)
    });
}

fn bench_selection_pipeline() {
    // Full compile (profile -> filter -> estimate -> partition) of the
    // chess example — the compile-time cost of Native Offloader itself.
    micro::wall("table3/selection_pipeline/compile_chess", 3, || {
        let app = Offloader::with_config(CompileConfig::table3())
            .compile_source(chess::SOURCE, "chess", &chess::input(8, 1))
            .expect("compiles");
        black_box(app.plan.tasks.len())
    });

    // Print the generated Table 3 for the bench log.
    let app = Offloader::with_config(CompileConfig::table3())
        .compile_source(chess::SOURCE, "chess", &chess::input(9, 2))
        .expect("compiles");
    for row in &app.plan.estimates {
        println!(
            "[table3] {:<22} exec {:>8.2} ms, invo {:>3}, mem {:>6.0} KB, Tg {:>8.2} ms, {}",
            row.name,
            row.exec_time_s * 1e3,
            row.invocations,
            row.mem_bytes as f64 / 1024.0,
            row.t_gain_s * 1e3,
            if row.selected {
                "SELECTED"
            } else if row.machine_specific {
                "filtered"
            } else {
                "rejected"
            }
        );
    }
}

fn main() {
    bench_equation1();
    bench_selection_pipeline();
}
