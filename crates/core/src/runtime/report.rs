//! Run reports: everything the paper's evaluation section reads off a run.

use offload_machine::power::PowerTimeline;
use offload_net::{TrafficStats, TransferEvent};
use offload_obs::MetricsSnapshot;

/// Numerator over denominator, guarded against a zero denominator.
///
/// A degenerate baseline (zero simulated seconds or millijoules — e.g. an
/// empty program) must not poison downstream geomeans with `inf`/`NaN`:
/// `0/0` reports `1.0` ("no change") and `x/0` saturates to [`f64::MAX`]
/// instead of infinity.
fn safe_ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else if num == 0.0 {
        1.0
    } else {
        f64::MAX
    }
}

/// The Fig. 7 overhead breakdown of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OverheadBreakdown {
    /// Mobile-side computation, seconds.
    pub mobile_compute_s: f64,
    /// Server-side computation (the "ideal" part of an offloaded run).
    pub server_compute_s: f64,
    /// Function-pointer translation (§3.4), seconds.
    pub fn_ptr_translation_s: f64,
    /// Remote I/O operation time (§3.4), seconds.
    pub remote_io_s: f64,
    /// Memory-transfer communication time (§4), seconds.
    pub communication_s: f64,
}

impl OverheadBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.mobile_compute_s
            + self.server_compute_s
            + self.fn_ptr_translation_s
            + self.remote_io_s
            + self.communication_s
    }
}

/// The result of one simulated program run (local or offloaded).
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Program name.
    pub name: String,
    /// Console output (remote printf output included, in order).
    pub console: String,
    /// Exit code, if the program exited explicitly.
    pub exit_code: Option<i64>,
    /// Whole-program wall time, seconds.
    pub total_seconds: f64,
    /// Mobile battery energy, millijoules.
    pub energy_mj: f64,
    /// Where the time went.
    pub breakdown: OverheadBreakdown,
    /// Mobile→server traffic.
    pub upload: TrafficStats,
    /// Server→mobile traffic.
    pub download: TrafficStats,
    /// Times an offload-enabled task was reached.
    pub offload_attempts: u64,
    /// Times the dynamic estimator said yes.
    pub offloads_performed: u64,
    /// Times it said no (the `*` entries of Fig. 6).
    pub offloads_refused: u64,
    /// Copy-on-demand page faults serviced over the network.
    pub demand_page_fetches: u64,
    /// Pages shipped by the initialization prefetch.
    pub prefetched_pages: u64,
    /// Pages pushed speculatively onto the link by the streaming
    /// predictor (zero with `StreamMode::Off`).
    pub pages_streamed: u64,
    /// Demand faults that landed on an in-flight streamed page (paying
    /// only the residual arrival time).
    pub stream_hits: u64,
    /// Streamed pages the server never touched (wire bytes wasted).
    pub stream_wasted_pages: u64,
    /// Estimated demand-stall seconds the stream hits avoided, vs the
    /// synchronous round trip each would have paid.
    pub stall_s_saved: f64,
    /// Dirty pages written back at finalizations.
    pub dirty_pages_written_back: u64,
    /// Function-pointer translations performed on the server.
    pub fn_map_translations: u64,
    /// Remote I/O operations executed.
    pub remote_io_calls: u64,
    /// Faults the certificate oracle validated against the region's
    /// may-access footprint (certificate runs only).
    pub oracle_faults_checked: u64,
    /// Dirty pages the oracle validated against the may-write footprint
    /// at finalization (certificate runs only).
    pub oracle_dirty_checked: u64,
    /// Baseline snapshots (4 KiB clones) skipped because the written
    /// page was outside the certified may-write set.
    pub baseline_snapshots_skipped: u64,
    /// The mobile power timeline (Fig. 8).
    pub timeline: PowerTimeline,
    /// Every network transfer, in order.
    pub events: Vec<TransferEvent>,
    /// Observability metrics captured during the run (empty on the
    /// default no-op collector path).
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// Whole-program speedup of this run relative to `baseline`
    /// (the paper's headline metric; geomean 6.42× over local execution).
    /// Guarded against a zero-time run: never returns `inf`/`NaN`.
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        safe_ratio(baseline.total_seconds, self.total_seconds)
    }

    /// Execution time normalized to `baseline` (the y-axis of Fig. 6(a)).
    /// Guarded against a zero-time baseline: never returns `inf`/`NaN`.
    pub fn normalized_time(&self, baseline: &RunReport) -> f64 {
        safe_ratio(self.total_seconds, baseline.total_seconds)
    }

    /// Battery consumption normalized to `baseline` (Fig. 6(b)).
    /// Guarded against a zero-energy baseline: never returns `inf`/`NaN`.
    pub fn normalized_energy(&self, baseline: &RunReport) -> f64 {
        safe_ratio(self.energy_mj, baseline.energy_mj)
    }

    /// Total communication traffic in megabytes of *payload* (Table 4
    /// reports MB per invocation).
    pub fn traffic_mb(&self) -> f64 {
        (self.upload.raw_bytes + self.download.raw_bytes) as f64 / 1_000_000.0
    }

    /// Traffic actually on the wire, megabytes — post-compression payload
    /// plus per-message framing. Compare with [`traffic_mb`](Self::traffic_mb)
    /// to see what batching + compression saved.
    pub fn traffic_wire_mb(&self) -> f64 {
        (self.upload.wire_bytes + self.download.wire_bytes) as f64 / 1_000_000.0
    }

    /// Fraction of streamed pages that were faulted while (or after)
    /// crossing the link — the streaming predictor's accuracy. Reports
    /// `1.0` when nothing was streamed (no predictions, no misses).
    pub fn stream_hit_rate(&self) -> f64 {
        if self.pages_streamed == 0 {
            1.0
        } else {
            self.stream_hits as f64 / self.pages_streamed as f64
        }
    }

    /// Communication traffic per performed offload, MB.
    pub fn traffic_mb_per_invocation(&self) -> f64 {
        if self.offloads_performed == 0 {
            0.0
        } else {
            self.traffic_mb() / self.offloads_performed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_math() {
        let base = RunReport {
            total_seconds: 10.0,
            energy_mj: 1000.0,
            ..Default::default()
        };
        let off = RunReport {
            total_seconds: 2.0,
            energy_mj: 180.0,
            ..Default::default()
        };
        assert!((off.speedup_vs(&base) - 5.0).abs() < 1e-12);
        assert!((off.normalized_time(&base) - 0.2).abs() < 1e-12);
        assert!((off.normalized_energy(&base) - 0.18).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_is_guarded() {
        let zero = RunReport::default();
        let run = RunReport {
            total_seconds: 2.0,
            energy_mj: 180.0,
            ..Default::default()
        };
        // 0/0 → "no change"; x/0 saturates finitely. Nothing is inf/NaN.
        assert_eq!(zero.normalized_time(&zero), 1.0);
        assert_eq!(zero.normalized_energy(&zero), 1.0);
        assert_eq!(zero.speedup_vs(&zero), 1.0);
        assert_eq!(run.normalized_time(&zero), f64::MAX);
        assert_eq!(run.normalized_energy(&zero), f64::MAX);
        assert_eq!(zero.speedup_vs(&run), f64::MAX); // finished in 0 s
        for v in [
            run.normalized_time(&zero),
            zero.normalized_time(&run),
            run.speedup_vs(&zero),
            zero.speedup_vs(&run),
        ] {
            assert!(v.is_finite(), "{v} must be finite");
        }
    }

    #[test]
    fn breakdown_total() {
        let b = OverheadBreakdown {
            mobile_compute_s: 1.0,
            server_compute_s: 2.0,
            fn_ptr_translation_s: 0.5,
            remote_io_s: 0.25,
            communication_s: 0.25,
        };
        assert!((b.total() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_per_invocation() {
        let mut r = RunReport::default();
        r.upload.raw_bytes = 3_000_000;
        r.download.raw_bytes = 1_000_000;
        r.offloads_performed = 2;
        assert!((r.traffic_mb_per_invocation() - 2.0).abs() < 1e-12);
        r.offloads_performed = 0;
        assert_eq!(r.traffic_mb_per_invocation(), 0.0);
    }

    #[test]
    fn stream_hit_rate_guards_zero_streamed() {
        let mut r = RunReport::default();
        assert_eq!(r.stream_hit_rate(), 1.0);
        r.pages_streamed = 8;
        r.stream_hits = 6;
        assert!((r.stream_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn wire_traffic_reads_wire_bytes() {
        let mut r = RunReport::default();
        r.upload.raw_bytes = 2_000_000;
        r.upload.wire_bytes = 500_000;
        r.download.raw_bytes = 1_000_000;
        r.download.wire_bytes = 250_000;
        assert!((r.traffic_mb() - 3.0).abs() < 1e-12);
        assert!((r.traffic_wire_mb() - 0.75).abs() < 1e-12);
    }
}
