//! The PR-level perf-regression harness behind `reproduce bench`.
//!
//! Two layers of evidence, one JSON artifact (`BENCH_pr3.json`):
//!
//! * **Protocol sweep** — every miniature plus the paper's chess running
//!   example runs on the forced fast network under the four
//!   `delta_writeback` × `compress` corners. All numbers are simulated
//!   wire bytes, so they are deterministic and CI-gateable: `--check`
//!   re-runs the chess workload and fails if its delta-mode wire bytes
//!   exceed the committed full-page baseline.
//! * **Micro benches** — host wall-clock ns/op for the two reworked hot
//!   paths (paged memory access, LZ match finder), each measured against
//!   the preserved seed implementation in [`crate::seed`]. These are
//!   recorded for the record but never gated (host clocks vary).

use std::fmt::Write as _;

use native_offloader::{CompiledApp, Offloader, RunReport, SessionConfig, WorkloadInput};
use offload_machine::mem::{BackingPolicy, Memory};
use offload_machine::PAGE_SIZE;
use offload_net::lz;
use offload_obs::TraceCollector;

use crate::micro;
use crate::seed::{seed_compress, SeedMemory};

/// Simulated protocol numbers for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadBench {
    /// Workload display name.
    pub name: String,
    /// Dirty pages written back over the whole run (config-invariant).
    pub dirty_pages: u64,
    /// Upload wire bytes with full-page transfers.
    pub up_full: u64,
    /// Upload wire bytes with sparse (zero-baseline delta) transfers.
    pub up_delta: u64,
    /// Download wire bytes, full-page mode, `compress = false`.
    pub full_raw: u64,
    /// Download wire bytes, full-page mode, `compress = true`.
    pub full_lz: u64,
    /// Download wire bytes, delta mode, `compress = false`.
    pub delta_raw: u64,
    /// Download wire bytes, delta mode, `compress = true`.
    pub delta_lz: u64,
    /// `wire_bytes_saved` metric from the traced uncompressed delta run
    /// (write-back savings only — upload savings show in `up_delta`).
    pub delta_bytes_saved: u64,
    /// Total-traffic saving of delta vs full-page, uncompressed:
    /// `1 - (up_delta + delta_raw) / (up_full + full_raw)`.
    pub total_saving_pct: f64,
}

impl WorkloadBench {
    /// Total uncompressed wire bytes with full-page transfers.
    #[must_use]
    pub fn full_total(&self) -> u64 {
        self.up_full + self.full_raw
    }

    /// Total uncompressed wire bytes with delta transfers.
    #[must_use]
    pub fn delta_total(&self) -> u64 {
        self.up_delta + self.delta_raw
    }
}

fn forced(delta: bool, compress: bool) -> SessionConfig {
    let mut cfg = SessionConfig::fast_network();
    cfg.dynamic_estimation = false;
    cfg.delta_writeback = delta;
    cfg.compress = compress;
    cfg
}

fn run(app: &CompiledApp, input: &WorkloadInput) -> [RunReport; 4] {
    let corner = |delta, compress| {
        app.run_offloaded(input, &forced(delta, compress))
            .expect("bench run")
    };
    [
        corner(false, false),
        corner(false, true),
        corner(true, false),
        corner(true, true),
    ]
}

#[allow(clippy::cast_precision_loss)]
fn bench_one(name: &str, app: &CompiledApp, input: &WorkloadInput) -> WorkloadBench {
    let [full_raw, full_lz, delta_raw, delta_lz] = run(app, input);
    let mut obs = TraceCollector::with_capacity(1 << 20);
    let traced = app
        .run_offloaded_traced(input, &forced(true, false), &mut obs)
        .expect("traced bench run");
    assert_eq!(
        traced.download.wire_bytes, delta_raw.download.wire_bytes,
        "{name}: traced and untraced runs diverged"
    );
    let full_total = full_raw.upload.wire_bytes + full_raw.download.wire_bytes;
    let delta_total = delta_raw.upload.wire_bytes + delta_raw.download.wire_bytes;
    let saving = if full_total > 0 {
        1.0 - delta_total as f64 / full_total as f64
    } else {
        0.0
    };
    WorkloadBench {
        name: name.to_string(),
        dirty_pages: full_raw.dirty_pages_written_back,
        up_full: full_raw.upload.wire_bytes,
        up_delta: delta_raw.upload.wire_bytes,
        full_raw: full_raw.download.wire_bytes,
        full_lz: full_lz.download.wire_bytes,
        delta_raw: delta_raw.download.wire_bytes,
        delta_lz: delta_lz.download.wire_bytes,
        delta_bytes_saved: obs.metrics().counter("wire_bytes_saved"),
        total_saving_pct: saving,
    }
}

fn chess_app() -> (CompiledApp, WorkloadInput) {
    let input = offload_workloads::chess::input(9, 2);
    let app = Offloader::new()
        .compile_source(offload_workloads::chess::SOURCE, "chess", &input)
        .expect("chess compiles");
    (app, input)
}

/// Run the protocol sweep: the 17 miniatures plus the chess example.
pub fn sweep() -> Vec<WorkloadBench> {
    let mut rows = Vec::new();
    let (app, input) = chess_app();
    rows.push(bench_one("chess", &app, &input));
    for w in offload_workloads::all() {
        let app = w.compile().expect("miniature compiles");
        let input = (w.eval_input)();
        rows.push(bench_one(w.name, &app, &input));
    }
    rows
}

/// Host wall-clock results for the two reworked hot paths.
#[derive(Debug, Clone)]
pub struct MicroBench {
    /// What was measured (e.g. `mem_seq`).
    pub name: String,
    /// Unit of the two numbers (`ns_per_op` or `ns_per_byte`).
    pub unit: String,
    /// Seed implementation, mean time in the stated unit.
    pub seed: f64,
    /// Current implementation, mean time in the stated unit.
    pub new: f64,
}

impl MicroBench {
    /// Speedup of the current implementation over the seed.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.new > 0.0 {
            self.seed / self.new
        } else {
            0.0
        }
    }
}

/// A deterministic page-like payload: interleaved text runs, counters and
/// sparse binary — roughly what a dirty-page blob looks like on the wire.
fn compress_corpus(len: usize) -> Vec<u8> {
    let mut data = Vec::with_capacity(len);
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    while data.len() < len {
        data.extend_from_slice(b"move stack frame: eval=");
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        data.extend_from_slice(&x.to_le_bytes());
        let n = data.len();
        data.extend_from_slice(&vec![0u8; 96 + (n % 64)]);
        data.extend_from_slice(&(n as u64).to_le_bytes());
    }
    data.truncate(len);
    data
}

const MEM_OPS: u64 = 8192;

fn mem_workout_new(m: &mut Memory) -> u64 {
    let mut acc = [0u8; 8];
    // Sequential sweep with a periodic hop: mostly same-page (TLB hits),
    // plus enough page crossings to exercise the miss path.
    for i in 0..MEM_OPS {
        let addr = (i * 8) % (64 * PAGE_SIZE) + (i % 7) * PAGE_SIZE;
        m.write(addr, &i.to_le_bytes()).expect("bench write");
        m.read(addr, &mut acc).expect("bench read");
    }
    u64::from_le_bytes(acc)
}

fn mem_workout_seed(m: &mut SeedMemory) -> u64 {
    let mut acc = [0u8; 8];
    for i in 0..MEM_OPS {
        let addr = (i * 8) % (64 * PAGE_SIZE) + (i % 7) * PAGE_SIZE;
        m.write(addr, &i.to_le_bytes());
        m.read(addr, &mut acc);
    }
    u64::from_le_bytes(acc)
}

/// Run the micro benches: paged-memory access and LZ compression, each
/// new-vs-seed on identical inputs.
#[allow(clippy::cast_precision_loss)]
pub fn micro_suite() -> Vec<MicroBench> {
    let samples = 7;
    let mut out = Vec::new();

    let mut new_mem = Memory::new(BackingPolicy::DemandZero);
    let mut seed_mem = SeedMemory::new();
    // Warm both so the measurement is page-hit steady state, not allocation.
    mem_workout_new(&mut new_mem);
    mem_workout_seed(&mut seed_mem);
    let n = micro::wall("mem access (arena + 1-entry TLB)", samples, || {
        mem_workout_new(&mut new_mem)
    });
    let s = micro::wall("mem access (seed BTreeMap walk)", samples, || {
        mem_workout_seed(&mut seed_mem)
    });
    // Each workout is MEM_OPS write+read pairs → 2 * MEM_OPS accesses.
    let per_op = |st: &micro::Stats| st.mean_s * 1e9 / (2.0 * MEM_OPS as f64);
    out.push(MicroBench {
        name: "mem_access".into(),
        unit: "ns_per_op".into(),
        seed: per_op(&s),
        new: per_op(&n),
    });

    let corpus = compress_corpus(96 * 1024);
    let bytes = corpus.len() as u64;
    let n = micro::wall_bytes(
        "lz compress (hash-chain, alloc-free)",
        samples,
        bytes,
        || lz::compress(&corpus),
    );
    let s = micro::wall_bytes("lz compress (seed HashMap table)", samples, bytes, || {
        seed_compress(&corpus)
    });
    assert_eq!(
        lz::decompress(&lz::compress(&corpus)).expect("new roundtrip"),
        lz::decompress(&seed_compress(&corpus)).expect("seed roundtrip"),
        "seed and new compressors must encode the same bytes"
    );
    let per_byte = |st: &micro::Stats| st.mean_s * 1e9 / bytes as f64;
    out.push(MicroBench {
        name: "lz_compress".into(),
        unit: "ns_per_byte".into(),
        seed: per_byte(&s),
        new: per_byte(&n),
    });
    out
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render the whole artifact as pretty-printed JSON (hand-rolled — the
/// workspace is dependency-free by design).
#[must_use]
pub fn to_json(rows: &[WorkloadBench], micros: &[MicroBench]) -> String {
    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"bench_pr3.v1\",\n");
    j.push_str("  \"units\": \"wire fields are simulated bytes; micro fields are host wall-clock means\",\n");
    j.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str("    {\"name\": \"");
        push_json_escaped(&mut j, &r.name);
        let _ = write!(
            j,
            "\", \"dirty_pages\": {}, \"up_full\": {}, \"up_delta\": {}, \"full_raw\": {}, \"full_lz\": {}, \"delta_raw\": {}, \"delta_lz\": {}, \"full_total\": {}, \"delta_total\": {}, \"delta_bytes_saved\": {}, \"total_saving_pct\": {:.4}}}",
            r.dirty_pages,
            r.up_full,
            r.up_delta,
            r.full_raw,
            r.full_lz,
            r.delta_raw,
            r.delta_lz,
            r.full_total(),
            r.delta_total(),
            r.delta_bytes_saved,
            r.total_saving_pct
        );
        j.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    j.push_str("  ],\n  \"micro\": [\n");
    for (i, m) in micros.iter().enumerate() {
        j.push_str("    {\"name\": \"");
        push_json_escaped(&mut j, &m.name);
        j.push_str("\", \"unit\": \"");
        push_json_escaped(&mut j, &m.unit);
        let _ = write!(
            j,
            "\", \"seed\": {:.3}, \"new\": {:.3}, \"speedup\": {:.2}}}",
            m.seed,
            m.new,
            m.speedup()
        );
        j.push_str(if i + 1 == micros.len() { "\n" } else { ",\n" });
    }
    j.push_str("  ]\n}\n");
    j
}

/// Pull one `"key": <integer>` out of `text` starting at `from`.
fn scan_u64(text: &str, from: usize, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let rest = text[at..].trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The committed baseline numbers `--check` gates against.
#[derive(Debug, Clone, Copy)]
pub struct CommittedBaseline {
    /// Chess full-page uncompressed total (up + down) wire bytes.
    pub chess_full_total: u64,
    /// Chess delta-mode uncompressed total (up + down) wire bytes.
    pub chess_delta_total: u64,
}

/// Parse the committed `BENCH_pr3.json` just enough to gate on it.
///
/// # Errors
///
/// Returns a message if the chess row or its fields cannot be found.
pub fn parse_committed(text: &str) -> Result<CommittedBaseline, String> {
    let at = text
        .find("\"name\": \"chess\"")
        .ok_or("no chess row in committed bench file")?;
    let full = scan_u64(text, at, "full_total").ok_or("chess row lacks full_total")?;
    let delta = scan_u64(text, at, "delta_total").ok_or("chess row lacks delta_total")?;
    Ok(CommittedBaseline {
        chess_full_total: full,
        chess_delta_total: delta,
    })
}

/// The CI gate: re-run the chess workload and fail if its delta-mode wire
/// bytes regressed past the committed full-page baseline (all simulated,
/// so this is deterministic — no wall-clock flakiness).
///
/// # Errors
///
/// Returns a message describing the regression (or a parse failure).
pub fn check_against(committed: &str) -> Result<String, String> {
    let base = parse_committed(committed)?;
    let (app, input) = chess_app();
    let rep = app
        .run_offloaded(&input, &forced(true, false))
        .expect("chess bench run");
    let now = rep.upload.wire_bytes + rep.download.wire_bytes;
    if now > base.chess_full_total {
        return Err(format!(
            "chess delta-mode wire bytes {now} exceed the committed full-page baseline {} — sub-page delta transfers have regressed",
            base.chess_full_total
        ));
    }
    Ok(format!(
        "chess delta wire bytes {now} <= committed full-page baseline {} (committed delta was {})",
        base.chess_full_total, base.chess_delta_total
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_through_the_checker_scanner() {
        let rows = vec![WorkloadBench {
            name: "chess".into(),
            dirty_pages: 7,
            up_full: 100,
            up_delta: 50,
            full_raw: 2000,
            full_lz: 900,
            delta_raw: 300,
            delta_lz: 250,
            delta_bytes_saved: 1700,
            total_saving_pct: 0.8333,
        }];
        let micros = vec![MicroBench {
            name: "mem_access".into(),
            unit: "ns_per_op".into(),
            seed: 100.0,
            new: 25.0,
        }];
        let j = to_json(&rows, &micros);
        let base = parse_committed(&j).expect("parses");
        assert_eq!(base.chess_full_total, 2100);
        assert_eq!(base.chess_delta_total, 350);
        assert!(j.contains("\"speedup\": 4.00"));
    }

    #[test]
    fn missing_chess_row_is_an_error() {
        assert!(parse_committed("{\"workloads\": []}").is_err());
    }

    #[test]
    fn compress_corpus_is_deterministic_and_compressible() {
        let a = compress_corpus(8192);
        let b = compress_corpus(8192);
        assert_eq!(a, b);
        assert!(lz::compress(&a).len() < a.len());
    }
}
