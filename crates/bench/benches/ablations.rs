//! Ablation benches for the design choices DESIGN.md calls out: each §4
//! mechanism toggled off against the default runtime, measured in
//! **simulated** seconds.
//!
//! Two workloads carry the ablations:
//!
//! * `164.gzip` — traffic-heavy with a dense working set: the right
//!   stress for **compression** and **batching**.
//! * `sparse_lookup` — a purpose-built program whose task touches a small
//!   input-dependent sliver of an 800 KB table. This is exactly the §6
//!   scenario where a conservative static partitioner "should
//!   conservatively send all the data that the offloaded tasks may
//!   touch": **copy-on-demand**, **prefetch** and **fault-ahead** are
//!   measured here.

use native_offloader::{CompiledApp, Offloader, SessionConfig, WorkloadInput};
use offload_bench::micro;
use offload_workloads::by_short_name;

/// The §6 sparse-access workload: an 800 KB table of which each run
/// touches only a contiguous ~16 KB window selected by the input.
const SPARSE_LOOKUP: &str = r#"
int table[200000];
long results[512];

long probe(int start, int n) {
    int r; int i;
    long acc = 0;
    for (r = 0; r < 400; r++) {
        for (i = 0; i < n; i++) {
            acc += table[(start + i) % 200000];
        }
        results[r % 512] = acc;
    }
    return acc;
}

int main() {
    int start; int n; int i;
    scanf("%d %d", &start, &n);
    for (i = 0; i < 200000; i++) table[i] = (i * 2654435761) % 1000;
    printf("probe %d\n", (int)(probe(start, n) % 1000000007));
    return 0;
}
"#;

fn sparse_app() -> (CompiledApp, WorkloadInput) {
    let app = Offloader::new()
        .compile_source(
            SPARSE_LOOKUP,
            "sparse_lookup",
            &WorkloadInput::from_stdin("1000 4000\n"),
        )
        .expect("compiles");
    assert!(
        app.plan.task_by_name("probe").is_some(),
        "{:#?}",
        app.plan.estimates
    );
    (app, WorkloadInput::from_stdin("120000 4000\n"))
}

fn gzip_app() -> (CompiledApp, WorkloadInput) {
    let w = by_short_name("gzip").expect("gzip exists");
    (w.compile().expect("compiles"), (w.eval_input)())
}

fn forced_fast() -> SessionConfig {
    let mut c = SessionConfig::fast_network();
    c.dynamic_estimation = false; // always offload: isolate each knob
    c
}

fn simulated(app: &CompiledApp, input: &WorkloadInput, cfg: &SessionConfig) -> f64 {
    app.run_offloaded(input, cfg)
        .expect("offloaded")
        .total_seconds
}

fn bench_group(
    group_name: &str,
    app: &CompiledApp,
    input: &WorkloadInput,
    variants: &[(&str, SessionConfig)],
) {
    for (name, cfg) in variants {
        micro::simulated(&format!("{group_name}/{name}"), 3, || {
            simulated(app, input, cfg)
        });
    }
    let t_default = simulated(app, input, &variants[0].1);
    println!(
        "[ablation:{group_name}] {}: {:.2} ms",
        variants[0].0,
        t_default * 1e3
    );
    for (name, cfg) in &variants[1..] {
        let t = simulated(app, input, cfg);
        println!(
            "[ablation:{group_name}] {name}: {:.2} ms ({:+.1}% vs default)",
            t * 1e3,
            (t / t_default - 1.0) * 100.0
        );
    }
}

fn bench_communication_ablations() {
    let (app, input) = gzip_app();
    let base = forced_fast();
    let variants = vec![
        ("default", base.clone()),
        (
            "no_compression",
            SessionConfig {
                compress: false,
                ..base.clone()
            },
        ),
        (
            "no_batching",
            SessionConfig {
                batch: false,
                ..base
            },
        ),
    ];
    bench_group("ablations_comm", &app, &input, &variants);

    // §4 claims both optimizations reduce communication cost.
    let t_default = simulated(&app, &input, &variants[0].1);
    let t_nocomp = simulated(&app, &input, &variants[1].1);
    let t_nobatch = simulated(&app, &input, &variants[2].1);
    assert!(
        t_nocomp > t_default,
        "compression must pay off on gzip traffic"
    );
    assert!(
        t_nobatch > t_default,
        "batching must pay off on gzip traffic"
    );
}

fn bench_paging_ablations() {
    let (app, input) = sparse_app();
    let base = forced_fast();
    let variants = vec![
        ("default", base.clone()),
        (
            "eager_full_transfer",
            SessionConfig {
                copy_on_demand: false,
                ..base.clone()
            },
        ),
        (
            "no_prefetch",
            SessionConfig {
                prefetch: false,
                ..base.clone()
            },
        ),
        (
            "no_fault_ahead",
            SessionConfig {
                fault_ahead: 1,
                prefetch: false,
                ..base
            },
        ),
    ];
    bench_group("ablations_paging", &app, &input, &variants);

    // §6: copy-on-demand ships the touched sliver; a conservative eager
    // transfer ships the whole 800 KB table.
    let cod = app.run_offloaded(&input, &variants[0].1).expect("cod");
    let eager = app.run_offloaded(&input, &variants[1].1).expect("eager");
    assert_eq!(cod.console, eager.console);
    assert!(
        cod.upload.raw_bytes * 4 < eager.upload.raw_bytes,
        "CoD {} bytes vs eager {} bytes",
        cod.upload.raw_bytes,
        eager.upload.raw_bytes
    );
    assert!(
        cod.total_seconds < eager.total_seconds,
        "copy-on-demand must beat eager full-memory transfer (§6): {:.2} vs {:.2} ms",
        cod.total_seconds * 1e3,
        eager.total_seconds * 1e3
    );
    // Fault-ahead amortizes round trips when prefetch cannot help.
    let one = simulated(&app, &input, &variants[3].1);
    let ahead = simulated(&app, &input, &variants[2].1);
    assert!(ahead <= one, "fault-ahead must not lose: {ahead} vs {one}");
}

fn main() {
    bench_communication_ablations();
    bench_paging_ablations();
}
