//! A from-scratch LZ77-style codec with a time-cost model.
//!
//! §4: "the runtime also compresses the communicated data before sending it
//! ... since compression requires much more time than decompression, the
//! Native Offloader runtime applies the compression only to the
//! server-to-mobile communication" — so the codec's cost asymmetry is part
//! of the design, not an implementation detail. [`COMPRESS_NS_PER_BYTE`]
//! and [`DECOMPRESS_NS_PER_BYTE`] encode that asymmetry.
//!
//! Wire format, token by token:
//!
//! * `0x00, len:u8, bytes...` — literal run of `len` (1–255) bytes
//! * `0x01, off_lo, off_hi, len:u8` — copy `len` (4–255) bytes from
//!   `offset` (1–65535) bytes back

use std::collections::HashMap;

/// Nanoseconds per input byte to compress (server-class core).
pub const COMPRESS_NS_PER_BYTE: f64 = 18.0;
/// Nanoseconds per output byte to decompress (mobile-class core).
pub const DECOMPRESS_NS_PER_BYTE: f64 = 3.5;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 255;
const MAX_OFFSET: usize = 65_535;

/// Compress `data`.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut table: HashMap<[u8; MIN_MATCH], Vec<usize>> = HashMap::new();
    let mut literals: Vec<u8> = Vec::new();
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, lits: &mut Vec<u8>| {
        for chunk in lits.chunks(255) {
            out.push(0x00);
            out.push(chunk.len() as u8);
            out.extend_from_slice(chunk);
        }
        lits.clear();
    };

    while i < data.len() {
        let mut best: Option<(usize, usize)> = None; // (offset, len)
        if i + MIN_MATCH <= data.len() {
            let key: [u8; MIN_MATCH] = data[i..i + MIN_MATCH].try_into().expect("length checked");
            if let Some(positions) = table.get(&key) {
                // Scan recent candidates first (at most 16 to bound time).
                for &pos in positions.iter().rev().take(16) {
                    let offset = i - pos;
                    if offset > MAX_OFFSET {
                        break;
                    }
                    let mut len = 0usize;
                    while len < MAX_MATCH
                        && i + len < data.len()
                        && data[pos + len] == data[i + len]
                    {
                        len += 1;
                    }
                    if len >= MIN_MATCH && best.is_none_or(|(_, bl)| len > bl) {
                        best = Some((offset, len));
                    }
                }
            }
            table.entry(key).or_default().push(i);
        }
        match best {
            Some((offset, len)) => {
                flush_literals(&mut out, &mut literals);
                out.push(0x01);
                out.push((offset & 0xFF) as u8);
                out.push((offset >> 8) as u8);
                out.push(len as u8);
                // Index a few positions inside the match so future matches
                // can start there too.
                for k in 1..len.min(8) {
                    let p = i + k;
                    if p + MIN_MATCH <= data.len() {
                        let key: [u8; MIN_MATCH] =
                            data[p..p + MIN_MATCH].try_into().expect("length checked");
                        table.entry(key).or_default().push(p);
                    }
                }
                i += len;
            }
            None => {
                literals.push(data[i]);
                i += 1;
            }
        }
    }
    flush_literals(&mut out, &mut literals);
    out
}

/// Decompression failure (corrupt stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Offset in the compressed stream where decoding failed.
    pub at: usize,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt LZ stream at byte {}", self.at)
    }
}

impl std::error::Error for DecodeError {}

/// Decompress a stream produced by [`compress`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or malformed input.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0usize;
    while i < data.len() {
        match data[i] {
            0x00 => {
                let len = *data.get(i + 1).ok_or(DecodeError { at: i })? as usize;
                let start = i + 2;
                let end = start + len;
                if end > data.len() || len == 0 {
                    return Err(DecodeError { at: i });
                }
                out.extend_from_slice(&data[start..end]);
                i = end;
            }
            0x01 => {
                if i + 4 > data.len() {
                    return Err(DecodeError { at: i });
                }
                let offset = data[i + 1] as usize | ((data[i + 2] as usize) << 8);
                let len = data[i + 3] as usize;
                if offset == 0 || offset > out.len() || len < MIN_MATCH {
                    return Err(DecodeError { at: i });
                }
                let start = out.len() - offset;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
                i += 4;
            }
            _ => return Err(DecodeError { at: i }),
        }
    }
    Ok(out)
}

/// Seconds to compress `bytes` input bytes (server-side cost).
pub fn compress_seconds(bytes: u64) -> f64 {
    bytes as f64 * COMPRESS_NS_PER_BYTE * 1e-9
}

/// Seconds to decompress to `bytes` output bytes (mobile-side cost).
pub fn decompress_seconds(bytes: u64) -> f64 {
    bytes as f64 * DECOMPRESS_NS_PER_BYTE * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_texty_data() {
        let data =
            b"the quick brown fox jumps over the lazy dog, the quick brown fox again".repeat(20);
        let c = compress(&data);
        assert!(
            c.len() < data.len(),
            "compressible data must shrink: {} vs {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_zero_page() {
        // Pages of zeroes dominate offload traffic; they must compress hard.
        let page = vec![0u8; 4096];
        let c = compress(&page);
        assert!(c.len() < 128, "zero page compressed to {} bytes", c.len());
        assert_eq!(decompress(&c).unwrap(), page);
    }

    #[test]
    fn roundtrip_incompressible_data() {
        // A pseudo-random byte soup: may expand slightly, must roundtrip.
        let mut x: u32 = 0x1234_5678;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() <= data.len() + data.len() / 128 + 16);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        assert_eq!(decompress(&compress(&[])).unwrap(), Vec::<u8>::new());
        assert_eq!(decompress(&compress(&[7])).unwrap(), vec![7]);
        assert_eq!(decompress(&compress(b"abc")).unwrap(), b"abc".to_vec());
    }

    #[test]
    fn corrupt_streams_error() {
        assert!(decompress(&[0x02]).is_err());
        assert!(decompress(&[0x00, 5, 1, 2]).is_err()); // truncated literals
        assert!(decompress(&[0x01, 1, 0, 10]).is_err()); // match before start
        assert!(decompress(&[0x01, 0, 0]).is_err()); // truncated match
    }

    #[test]
    fn cost_asymmetry_matches_the_papers_rationale() {
        // Compression must cost several times more than decompression —
        // that is why §4 only compresses server→mobile.
        assert!(compress_seconds(1_000_000) > 3.0 * decompress_seconds(1_000_000));
    }

    #[test]
    fn overlapping_match_copies() {
        // "aaaaaaa...": matches overlap their own output.
        let data = vec![b'a'; 1000];
        let c = compress(&data);
        assert!(c.len() < 40);
        assert_eq!(decompress(&c).unwrap(), data);
    }
}
