//! Simulated wireless link for the Native Offloader reproduction.
//!
//! The paper evaluates under two real WiFi networks — 802.11n ("slow",
//! 144 Mbps max) and 802.11ac ("fast", 844 Mbps max) — and §4 describes the
//! two communication optimizations layered on top: **batching** (buffer
//! messages, send once, amortize per-call overhead) and **compression**
//! (server→mobile only, because compression costs much more than
//! decompression and the mobile CPU must not pay it).
//!
//! This crate models exactly those pieces:
//!
//! * [`Link`] — bandwidth/latency transfer-time model with presets,
//! * [`lz`] — a from-scratch LZ77-style codec with a cost model,
//! * [`delta`] — sub-page delta records for dirty write-back,
//! * [`BatchBuffer`] — the §4 batching buffer,
//! * [`Channel`] — a duplex endpoint pair that records every transfer as a
//!   timestamped [`TransferEvent`] (the input to the Fig. 8 power replay)
//!   and aggregates [`TrafficStats`] (the "Com. Traf." column of Table 4).

pub mod batch;
pub mod channel;
pub mod delta;
pub mod frame;
pub mod link;
pub mod lz;
pub mod stream;

pub use batch::BatchBuffer;
pub use channel::{Channel, Direction, MsgKind, TrafficStats, TransferEvent};
pub use frame::{FrameError, Message};
pub use link::Link;
pub use stream::{DrainOutcome, InFlightPage, StreamWindow};
