//! Bandwidth-aware prediction — the extension the paper's related work
//! points at: "Wolski et al. and NWSLite propose bandwidth-aware
//! performance prediction to count network costs. With these prediction
//! algorithms, the Native Offloader compiler and runtime can predict the
//! performance more precisely." (§6)
//!
//! [`BandwidthTracker`] observes every real transfer the session makes and
//! maintains an EWMA of *effective* throughput (payload ÷ wall time, so
//! latency and framing are priced in). When
//! [`SessionConfig::adaptive_bandwidth`](crate::SessionConfig) is on, the
//! dynamic estimator divides by this observed figure instead of the
//! link's nominal bandwidth — catching links whose nominal rate is fine
//! but whose latency makes chatty offloads a loss.

/// EWMA tracker of observed effective bandwidth.
#[derive(Debug, Clone)]
pub struct BandwidthTracker {
    ewma_bps: Option<f64>,
    alpha: f64,
    samples: u64,
    bytes_seen: u64,
}

impl Default for BandwidthTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl BandwidthTracker {
    /// A tracker with the default smoothing factor (0.3 — responsive but
    /// not twitchy, the NWSLite neighbourhood).
    pub fn new() -> Self {
        Self::with_alpha(0.3)
    }

    /// A tracker with an explicit smoothing factor in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is out of range.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of (0, 1]");
        BandwidthTracker {
            ewma_bps: None,
            alpha,
            samples: 0,
            bytes_seen: 0,
        }
    }

    /// Record one observed transfer.
    pub fn observe(&mut self, payload_bytes: u64, seconds: f64) {
        if seconds <= 0.0 || payload_bytes == 0 {
            return;
        }
        let bps = payload_bytes as f64 * 8.0 / seconds;
        self.ewma_bps = Some(match self.ewma_bps {
            None => bps,
            Some(prev) => prev + self.alpha * (bps - prev),
        });
        self.samples += 1;
        self.bytes_seen += payload_bytes;
    }

    /// The current effective-bandwidth estimate in bits/second, if any
    /// transfer has been observed.
    pub fn estimate_bps(&self) -> Option<u64> {
        self.ewma_bps.map(|b| b.max(1.0) as u64)
    }

    /// Number of observations so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Total payload bytes observed.
    pub fn bytes_seen(&self) -> u64 {
        self.bytes_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_estimate_before_observations() {
        assert_eq!(BandwidthTracker::new().estimate_bps(), None);
    }

    #[test]
    fn converges_toward_observed_rate() {
        let mut t = BandwidthTracker::new();
        for _ in 0..50 {
            t.observe(1_000_000, 0.1); // 80 Mbps effective
        }
        let est = t.estimate_bps().unwrap();
        assert!((79_000_000..81_000_000).contains(&est), "{est}");
        assert_eq!(t.samples(), 50);
    }

    #[test]
    fn latency_depresses_effective_bandwidth() {
        // A 500 Mbps link with 300 ms latency moving 4 KB messages has a
        // tiny *effective* rate — the situation the nominal figure hides.
        let mut t = BandwidthTracker::new();
        for _ in 0..10 {
            t.observe(4096, 0.3);
        }
        assert!(t.estimate_bps().unwrap() < 1_000_000);
    }

    #[test]
    fn ewma_responds_to_change() {
        let mut t = BandwidthTracker::new();
        t.observe(10_000_000, 1.0); // 80 Mbps
        for _ in 0..20 {
            t.observe(1_000_000, 1.0); // 8 Mbps
        }
        let est = t.estimate_bps().unwrap() as f64;
        assert!(est < 12_000_000.0, "should have converged down: {est}");
    }

    #[test]
    fn degenerate_observations_ignored() {
        let mut t = BandwidthTracker::new();
        t.observe(0, 1.0);
        t.observe(100, 0.0);
        assert_eq!(t.estimate_bps(), None);
    }

    #[test]
    #[should_panic(expected = "alpha out of (0, 1]")]
    fn bad_alpha_panics() {
        let _ = BandwidthTracker::with_alpha(0.0);
    }
}
