//! Table 1 bench: the chess movement computation on the simulated phone
//! vs the simulated desktop.
//!
//! Uses `iter_custom` to report **simulated** seconds, so the Criterion
//! output directly mirrors Table 1's two device rows; the measured gap
//! (paper: 5.36–5.89×) is also asserted and printed.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use offload_machine::host::LocalHost;
use offload_machine::loader;
use offload_machine::target::TargetSpec;
use offload_machine::vm::{StackBank, Vm};
use offload_workloads::chess;

fn run_once(module: &offload_ir::Module, spec: &TargetSpec, bank: StackBank, depth: u32) -> f64 {
    // A standalone run on each device uses that back-end's own function
    // addresses (each device runs its natively compiled binary). Images
    // are placed under the unified layout the VM executes with.
    let unified = offload_ir::TargetAbi::MobileArm32.data_layout();
    let image = match bank {
        StackBank::Mobile => loader::load(module, &unified).expect("loads"),
        StackBank::Server => loader::load_for_server(module, &unified).expect("loads"),
    };
    let mut host = LocalHost::new();
    host.set_stdin(chess::input(depth, 1).stdin);
    let mut vm = Vm::new(module, spec, image, bank);
    vm.run_entry(&mut host).expect("runs");
    spec.cycles_to_seconds(vm.clock.cycles)
}

fn bench_table1(c: &mut Criterion) {
    let module = offload_minic::compile(chess::SOURCE, "chess").expect("compiles");
    let mut group = c.benchmark_group("table1_chess_gap");
    group.sample_size(10);

    for depth in [7u32, 9, 11] {
        group.bench_with_input(BenchmarkId::new("smartphone", depth), &depth, |b, &d| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += run_once(&module, &TargetSpec::galaxy_s5(), StackBank::Mobile, d);
                }
                Duration::from_secs_f64(total)
            });
        });
        group.bench_with_input(BenchmarkId::new("desktop", depth), &depth, |b, &d| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += run_once(&module, &TargetSpec::xps_8700(), StackBank::Server, d);
                }
                Duration::from_secs_f64(total)
            });
        });
        let phone = run_once(&module, &TargetSpec::galaxy_s5(), StackBank::Mobile, depth);
        let desktop = run_once(&module, &TargetSpec::xps_8700(), StackBank::Server, depth);
        println!(
            "[table1] depth {depth}: phone {:.2} ms, desktop {:.2} ms, gap {:.2}x (paper ~5.4-5.9x)",
            phone * 1e3,
            desktop * 1e3,
            phone / desktop
        );
        assert!(phone / desktop > 2.0, "the gap must be large at every level");
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Simulated-time measurements are deterministic (zero variance), which
    // breaks Criterion's plot generation; plots stay off.
    config = Criterion::default().without_plots();
    targets = bench_table1
}
criterion_main!(benches);
