//! C-style formatted I/O and the virtual device environment (console +
//! filesystem).
//!
//! The function filter's whole story (§3.1/§3.4) revolves around I/O:
//! interactive input (`scanf`) pins a region to the mobile device, output
//! (`printf`) can be remoted, and file streams can be remoted *and*
//! prefetched. This module provides the pieces both hosts share: a printf
//! formatter, a scanf scanner, a console with a scripted stdin, and a
//! virtual filesystem.

use std::collections::HashMap;

/// A varargs value passed to the formatter (matches the VM's register
/// values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IoArg {
    /// Integer or pointer bits.
    I(i64),
    /// Float value.
    F(f64),
}

/// A formatting/scanning failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "io error: {}", self.message)
    }
}

impl std::error::Error for IoError {}

fn err(msg: impl Into<String>) -> IoError {
    IoError {
        message: msg.into(),
    }
}

/// Render a C format string with `args`. `%s` arguments are addresses,
/// resolved through `read_str`.
///
/// Supported conversions: `%d %i %u %ld %lld %c %s %x %X %f %lf %e %g %%`
/// with optional `-`/`0` flags, width and precision.
///
/// # Errors
///
/// Returns [`IoError`] on malformed format strings or missing arguments.
pub fn format_c(
    fmt: &[u8],
    args: &[IoArg],
    read_str: &mut dyn FnMut(u64) -> Result<Vec<u8>, IoError>,
) -> Result<Vec<u8>, IoError> {
    let mut out = Vec::with_capacity(fmt.len() + 16);
    let mut ai = 0usize;
    let mut i = 0usize;
    while i < fmt.len() {
        if fmt[i] != b'%' {
            out.push(fmt[i]);
            i += 1;
            continue;
        }
        i += 1;
        if i >= fmt.len() {
            return Err(err("dangling %"));
        }
        if fmt[i] == b'%' {
            out.push(b'%');
            i += 1;
            continue;
        }
        // Flags.
        let mut left = false;
        let mut zero = false;
        while i < fmt.len() {
            match fmt[i] {
                b'-' => left = true,
                b'0' => zero = true,
                _ => break,
            }
            i += 1;
        }
        // Width.
        let mut width = 0usize;
        while i < fmt.len() && fmt[i].is_ascii_digit() {
            width = width * 10 + (fmt[i] - b'0') as usize;
            i += 1;
        }
        // Precision.
        let mut precision: Option<usize> = None;
        if i < fmt.len() && fmt[i] == b'.' {
            i += 1;
            let mut p = 0usize;
            while i < fmt.len() && fmt[i].is_ascii_digit() {
                p = p * 10 + (fmt[i] - b'0') as usize;
                i += 1;
            }
            precision = Some(p);
        }
        // Length modifiers (consumed, not distinguished: our ints are i64).
        while i < fmt.len() && matches!(fmt[i], b'l' | b'h' | b'z') {
            i += 1;
        }
        if i >= fmt.len() {
            return Err(err("truncated conversion"));
        }
        let conv = fmt[i];
        i += 1;
        let mut next_arg = || -> Result<IoArg, IoError> {
            let a = args
                .get(ai)
                .copied()
                .ok_or_else(|| err("missing printf argument"))?;
            ai += 1;
            Ok(a)
        };
        let body: Vec<u8> = match conv {
            b'd' | b'i' => match next_arg()? {
                IoArg::I(v) => v.to_string().into_bytes(),
                IoArg::F(v) => (v as i64).to_string().into_bytes(),
            },
            b'u' => match next_arg()? {
                IoArg::I(v) => (v as u64).to_string().into_bytes(),
                IoArg::F(v) => (v as u64).to_string().into_bytes(),
            },
            b'x' => match next_arg()? {
                IoArg::I(v) => format!("{:x}", v as u64).into_bytes(),
                IoArg::F(_) => return Err(err("%x on float")),
            },
            b'X' => match next_arg()? {
                IoArg::I(v) => format!("{:X}", v as u64).into_bytes(),
                IoArg::F(_) => return Err(err("%X on float")),
            },
            b'c' => match next_arg()? {
                IoArg::I(v) => vec![v as u8],
                IoArg::F(_) => return Err(err("%c on float")),
            },
            b's' => match next_arg()? {
                IoArg::I(addr) => read_str(addr as u64)?,
                IoArg::F(_) => return Err(err("%s on float")),
            },
            b'f' | b'e' | b'g' => {
                let v = match next_arg()? {
                    IoArg::F(v) => v,
                    IoArg::I(v) => v as f64,
                };
                let p = precision.unwrap_or(6);
                match conv {
                    b'f' => format!("{v:.p$}", p = p).into_bytes(),
                    b'e' => format!("{v:.p$e}", p = p).into_bytes(),
                    _ => format!("{v}").into_bytes(),
                }
            }
            other => return Err(err(format!("unsupported conversion %{}", other as char))),
        };
        pad(&mut out, &body, width, left, zero);
    }
    Ok(out)
}

fn pad(out: &mut Vec<u8>, body: &[u8], width: usize, left: bool, zero: bool) {
    if body.len() >= width {
        out.extend_from_slice(body);
        return;
    }
    let fill = width - body.len();
    if left {
        out.extend_from_slice(body);
        out.extend(std::iter::repeat_n(b' ', fill));
    } else if zero && !body.is_empty() && (body[0].is_ascii_digit() || body[0] == b'-') {
        if body[0] == b'-' {
            out.push(b'-');
            out.extend(std::iter::repeat_n(b'0', fill));
            out.extend_from_slice(&body[1..]);
        } else {
            out.extend(std::iter::repeat_n(b'0', fill));
            out.extend_from_slice(body);
        }
    } else {
        out.extend(std::iter::repeat_n(b' ', fill));
        out.extend_from_slice(body);
    }
}

/// A value produced by one `scanf` conversion, tagged with the C type it
/// must be stored as.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanValue {
    /// `%d` — store as `int` (4 bytes).
    I32(i32),
    /// `%ld`/`%lld` — store as `long` (8 bytes).
    I64(i64),
    /// `%lf`/`%f` — store as `double`.
    F64(f64),
    /// `%c` — store one byte.
    Char(u8),
    /// `%s` — store bytes plus NUL.
    Str(Vec<u8>),
}

/// A scripted stdin: a byte buffer with a cursor.
#[derive(Debug, Clone, Default)]
pub struct InputStream {
    data: Vec<u8>,
    pos: usize,
}

impl InputStream {
    /// An input stream over `data`.
    pub fn new(data: impl Into<Vec<u8>>) -> Self {
        InputStream {
            data: data.into(),
            pos: 0,
        }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Read one byte (for `getchar`), or `None` at EOF.
    pub fn read_byte(&mut self) -> Option<u8> {
        let b = self.data.get(self.pos).copied();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while self
            .data
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn take_token(&mut self) -> Option<&[u8]> {
        self.skip_ws();
        let start = self.pos;
        while self
            .data
            .get(self.pos)
            .is_some_and(|b| !b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
        if self.pos > start {
            Some(&self.data[start..self.pos])
        } else {
            None
        }
    }
}

/// Execute the conversions of a `scanf` format string against `input`.
/// Literal characters in the format (including `,`) match loosely: they are
/// skipped along with whitespace. Returns one [`ScanValue`] per conversion
/// actually matched (stopping early at EOF, like `scanf`).
///
/// # Errors
///
/// Returns [`IoError`] on unsupported conversions.
pub fn scan_c(fmt: &[u8], input: &mut InputStream) -> Result<Vec<ScanValue>, IoError> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < fmt.len() {
        if fmt[i] != b'%' {
            i += 1;
            continue;
        }
        i += 1;
        if i < fmt.len() && fmt[i] == b'%' {
            i += 1;
            continue;
        }
        let mut long = false;
        while i < fmt.len() && matches!(fmt[i], b'l' | b'h') {
            long |= fmt[i] == b'l';
            i += 1;
        }
        if i >= fmt.len() {
            return Err(err("truncated scanf conversion"));
        }
        let conv = fmt[i];
        i += 1;
        match conv {
            b'd' | b'i' | b'u' => {
                let Some(tok) = input.take_token() else { break };
                let tok: Vec<u8> = tok
                    .iter()
                    .copied()
                    .take_while(|b| b.is_ascii_digit() || *b == b'-' || *b == b'+')
                    .collect();
                let text = String::from_utf8_lossy(&tok).to_string();
                let v: i64 = text
                    .parse()
                    .map_err(|_| err(format!("bad integer input {text:?}")))?;
                out.push(if long {
                    ScanValue::I64(v)
                } else {
                    ScanValue::I32(v as i32)
                });
            }
            b'f' | b'e' | b'g' => {
                let Some(tok) = input.take_token() else { break };
                let text = String::from_utf8_lossy(tok).to_string();
                let v: f64 = text
                    .parse()
                    .map_err(|_| err(format!("bad float input {text:?}")))?;
                out.push(ScanValue::F64(v));
            }
            b'c' => {
                let Some(b) = input.read_byte() else { break };
                out.push(ScanValue::Char(b));
            }
            b's' => {
                let Some(tok) = input.take_token() else { break };
                out.push(ScanValue::Str(tok.to_vec()));
            }
            other => {
                return Err(err(format!(
                    "unsupported scanf conversion %{}",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

/// The byte width a [`ScanValue`] occupies in memory.
pub fn scan_value_size(v: &ScanValue) -> u64 {
    match v {
        ScanValue::I32(_) => 4,
        ScanValue::I64(_) | ScanValue::F64(_) => 8,
        ScanValue::Char(_) => 1,
        ScanValue::Str(s) => s.len() as u64 + 1,
    }
}

/// File-descriptor state of an open virtual file.
#[derive(Debug, Clone)]
struct OpenFile {
    name: String,
    pos: usize,
    writable: bool,
}

/// An in-memory filesystem visible to one device (the paper's remote I/O
/// routes the *server's* file operations to the *mobile* filesystem).
#[derive(Debug, Clone, Default)]
pub struct VirtualFs {
    files: HashMap<String, Vec<u8>>,
    open: HashMap<i32, OpenFile>,
    next_fd: i32,
}

impl VirtualFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        VirtualFs {
            files: HashMap::new(),
            open: HashMap::new(),
            next_fd: 3,
        }
    }

    /// Create or replace a file.
    pub fn add_file(&mut self, name: impl Into<String>, data: impl Into<Vec<u8>>) {
        self.files.insert(name.into(), data.into());
    }

    /// A file's current contents.
    pub fn file(&self, name: &str) -> Option<&[u8]> {
        self.files.get(name).map(|v| &**v)
    }

    /// Open `name` with a C mode string (`"r"`, `"w"`, `"a"`, `"rb"`, ...).
    /// Returns a positive fd, or 0 (NULL-like) if a read of a missing file.
    pub fn open(&mut self, name: &str, mode: &str) -> i32 {
        let writable = mode.contains('w') || mode.contains('a');
        if !self.files.contains_key(name) {
            if writable {
                self.files.insert(name.to_string(), Vec::new());
            } else {
                return 0;
            }
        } else if mode.contains('w') {
            self.files.insert(name.to_string(), Vec::new());
        }
        let pos = if mode.contains('a') {
            self.files[name].len()
        } else {
            0
        };
        let fd = self.next_fd;
        self.next_fd += 1;
        self.open.insert(
            fd,
            OpenFile {
                name: name.to_string(),
                pos,
                writable,
            },
        );
        fd
    }

    /// Read up to `len` bytes from `fd`. Returns the bytes read (possibly
    /// short at EOF), or `None` for a bad fd.
    pub fn read(&mut self, fd: i32, len: usize) -> Option<Vec<u8>> {
        let of = self.open.get_mut(&fd)?;
        let data = self.files.get(&of.name)?;
        let end = (of.pos + len).min(data.len());
        let out = data[of.pos..end].to_vec();
        of.pos = end;
        Some(out)
    }

    /// Write bytes at the fd's position. Returns bytes written, or `None`
    /// for a bad or read-only fd.
    pub fn write(&mut self, fd: i32, bytes: &[u8]) -> Option<usize> {
        let of = self.open.get_mut(&fd)?;
        if !of.writable {
            return None;
        }
        let data = self.files.get_mut(&of.name)?;
        if of.pos + bytes.len() > data.len() {
            data.resize(of.pos + bytes.len(), 0);
        }
        data[of.pos..of.pos + bytes.len()].copy_from_slice(bytes);
        of.pos += bytes.len();
        Some(bytes.len())
    }

    /// Close `fd`. Returns `false` for a bad fd.
    pub fn close(&mut self, fd: i32) -> bool {
        self.open.remove(&fd).is_some()
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(f: &str, args: &[IoArg]) -> String {
        let mut no_strings = |_: u64| Err(err("no %s expected"));
        String::from_utf8(format_c(f.as_bytes(), args, &mut no_strings).unwrap()).unwrap()
    }

    #[test]
    fn formats_ints_and_floats() {
        assert_eq!(fmt("%d\n", &[IoArg::I(42)]), "42\n");
        assert_eq!(fmt("%5d|", &[IoArg::I(42)]), "   42|");
        assert_eq!(fmt("%-5d|", &[IoArg::I(42)]), "42   |");
        assert_eq!(fmt("%05d", &[IoArg::I(-42)]), "-0042");
        assert_eq!(fmt("%f", &[IoArg::F(1.5)]), "1.500000");
        assert_eq!(fmt("%.2f", &[IoArg::F(3.18659)]), "3.19");
        assert_eq!(fmt("%x", &[IoArg::I(255)]), "ff");
        assert_eq!(fmt("%c%c", &[IoArg::I(104), IoArg::I(105)]), "hi");
        assert_eq!(fmt("100%%", &[]), "100%");
    }

    #[test]
    fn percent_lf_accepts_long_modifier() {
        assert_eq!(fmt("%lf", &[IoArg::F(2.0)]), "2.000000");
        assert_eq!(fmt("%ld", &[IoArg::I(1_i64 << 40)]), "1099511627776");
    }

    #[test]
    fn string_conversion_reads_memory() {
        let mut resolver = |addr: u64| {
            assert_eq!(addr, 0x100);
            Ok(b"world".to_vec())
        };
        let out = format_c(b"hello %s", &[IoArg::I(0x100)], &mut resolver).unwrap();
        assert_eq!(out, b"hello world");
    }

    #[test]
    fn format_errors() {
        let mut no = |_: u64| Err(err("no"));
        assert!(format_c(b"%d", &[], &mut no).is_err());
        assert!(format_c(b"%q", &[IoArg::I(1)], &mut no).is_err());
        assert!(format_c(b"abc%", &[], &mut no).is_err());
    }

    #[test]
    fn scan_ints_floats_strings() {
        let mut input = InputStream::new("42 -7 3.5 abc");
        let vals = scan_c(b"%d %ld %lf %s", &mut input).unwrap();
        assert_eq!(
            vals,
            vec![
                ScanValue::I32(42),
                ScanValue::I64(-7),
                ScanValue::F64(3.5),
                ScanValue::Str(b"abc".to_vec())
            ]
        );
    }

    #[test]
    fn scan_stops_at_eof() {
        let mut input = InputStream::new("5");
        let vals = scan_c(b"%d %d", &mut input).unwrap();
        assert_eq!(vals, vec![ScanValue::I32(5)]);
    }

    #[test]
    fn scan_comma_separated() {
        // The paper's chess example: scanf("%d, %d", &from, &to).
        let mut input = InputStream::new("12, 34");
        let vals = scan_c(b"%d, %d", &mut input).unwrap();
        assert_eq!(vals, vec![ScanValue::I32(12), ScanValue::I32(34)]);
    }

    #[test]
    fn scan_handles_trailing_comma_on_token() {
        let mut input = InputStream::new("12,");
        let vals = scan_c(b"%d", &mut input).unwrap();
        assert_eq!(vals, vec![ScanValue::I32(12)]);
    }

    #[test]
    fn virtual_fs_read_write() {
        let mut fs = VirtualFs::new();
        fs.add_file("in.txt", b"hello".to_vec());
        let fd = fs.open("in.txt", "r");
        assert!(fd > 0);
        assert_eq!(fs.read(fd, 3).unwrap(), b"hel");
        assert_eq!(fs.read(fd, 10).unwrap(), b"lo");
        assert_eq!(fs.read(fd, 10).unwrap(), b"");
        assert!(fs.close(fd));
        assert!(!fs.close(fd));

        let fd = fs.open("out.txt", "w");
        assert_eq!(fs.write(fd, b"data").unwrap(), 4);
        fs.close(fd);
        assert_eq!(fs.file("out.txt").unwrap(), b"data");
    }

    #[test]
    fn missing_file_read_open_fails() {
        let mut fs = VirtualFs::new();
        assert_eq!(fs.open("nope.txt", "r"), 0);
    }

    #[test]
    fn write_to_readonly_fd_fails() {
        let mut fs = VirtualFs::new();
        fs.add_file("f", b"x".to_vec());
        let fd = fs.open("f", "r");
        assert!(fs.write(fd, b"y").is_none());
    }

    #[test]
    fn getchar_stream() {
        let mut s = InputStream::new("ab");
        assert_eq!(s.read_byte(), Some(b'a'));
        assert_eq!(s.read_byte(), Some(b'b'));
        assert_eq!(s.read_byte(), None);
    }
}
