//! Fig. 7 bench: overhead breakdown of offloaded execution for the three
//! overhead archetypes — fn-ptr translation (sjeng), remote I/O (gobmk),
//! communication (gzip with forced offload).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use native_offloader::SessionConfig;
use offload_workloads::by_short_name;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_breakdown");
    group.sample_size(10);

    for (short, overhead) in [("sjeng", "fnptr"), ("gobmk", "remote-io"), ("gzip", "network")] {
        let w = by_short_name(short).expect("workload exists");
        let app = w.compile().expect("compiles");
        let input = (w.eval_input)();
        let mut cfg = SessionConfig::fast_network();
        cfg.dynamic_estimation = false; // measure the breakdown even when marginal

        group.bench_with_input(BenchmarkId::new(overhead, short), &(), |b, ()| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += app.run_offloaded(&input, &cfg).expect("offloaded").total_seconds;
                }
                Duration::from_secs_f64(total)
            });
        });

        let rep = app.run_offloaded(&input, &cfg).expect("offloaded");
        let b = &rep.breakdown;
        println!(
            "[fig7] {short}: total {:.2} ms = compute {:.2} + fnptr {:.3} + remote-io {:.3} + network {:.3}",
            rep.total_seconds * 1e3,
            (b.mobile_compute_s + b.server_compute_s) * 1e3,
            b.fn_ptr_translation_s * 1e3,
            b.remote_io_s * 1e3,
            b.communication_s * 1e3
        );
        match overhead {
            "fnptr" => assert!(rep.fn_map_translations > 0),
            "remote-io" => assert!(rep.remote_io_calls > 0),
            _ => assert!(b.communication_s > 0.0),
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Simulated-time measurements are deterministic (zero variance), which
    // breaks Criterion's plot generation; plots stay off.
    config = Criterion::default().without_plots();
    targets = bench_fig7
}
criterion_main!(benches);
