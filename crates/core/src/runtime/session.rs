//! The offload session: the §4 life cycle on simulated devices.
//!
//! The mobile VM runs the mobile partition. When a dispatcher's
//! `offload_call` fires, the session executes the §4 protocol:
//!
//! * **initialization** — ship the request (task id, stack pointer, page
//!   table), snapshot the mobile page table, prefetch the profile-
//!   predicted pages;
//! * **offloading execution** — run the server wrapper on the server VM;
//!   absent pages fault and are copied on demand from the mobile memory;
//!   remote I/O calls route back to the mobile console/filesystem;
//!   function pointers are translated through the map tables;
//! * **finalization** — batch + compress the dirty pages, write them back
//!   into the mobile memory, deliver the return value, tear the server
//!   process down.
//!
//! Every byte crosses the recorded [`Channel`]; every interval lands on
//! the mobile [`PowerTimeline`] — which is how the Fig. 6(b) energy bars
//! and Fig. 8 power traces are produced.
//!
//! Every operation also flows through an [`offload_obs::Collector`]: the
//! default [`NoopCollector`] path costs nothing, while a
//! [`offload_obs::TraceCollector`] records the full typed event stream —
//! from which [`derive`](crate::runtime::derive) reconstructs the
//! [`OverheadBreakdown`], the power timeline and every `RunReport`
//! counter *bit for bit* (the accounting below and the derivation sum
//! the same f64 values in the same order).

use std::collections::{BTreeSet, HashMap};

use offload_ir::{Builtin, FuncId};
use offload_machine::heap::HeapAllocator;
use offload_machine::host::LocalHost;
use offload_machine::io::{self, IoArg, IoError};
use offload_machine::loader;
use offload_machine::mem::{BackingPolicy, MemError, Memory, ZERO_PAGE};
use offload_machine::power::{PowerState, PowerTimeline};
use offload_machine::uva_map;
use offload_machine::vm::{Host, HostCtx, RtVal, StackBank, Vm, VmError};
use offload_machine::PAGE_SIZE;
use offload_net::frame::{self, Message};
use offload_net::{delta, lz, Channel, Direction, InFlightPage, MsgKind};
use offload_obs::{
    Collector, CostLane, EventKind, NoopCollector, QueueLane, RemoteOp, Span as ObsSpan,
};

use crate::compiler::CompiledApp;
use crate::config::{SessionConfig, WorkloadInput};
use crate::plan::{OffloadPlan, RegionCertificate};
use crate::runtime::bandwidth::BandwidthTracker;
use crate::runtime::predict::{StreamEngine, StreamMode, StrideDetector};
use crate::runtime::report::{OverheadBreakdown, RunReport};
use crate::OffloadError;

/// Run the unmodified program locally on the mobile device — the baseline
/// every figure normalizes against.
///
/// # Errors
///
/// Simulated-execution failures.
pub fn run_local(app: &CompiledApp, input: &WorkloadInput) -> Result<RunReport, OffloadError> {
    let spec = &app.config.mobile;
    let image = loader::load(&app.original, &spec.data_layout())?;
    let mut host = LocalHost::new();
    host.set_stdin(input.stdin.clone());
    for (name, data) in &input.files {
        host.add_file(name.clone(), data.clone());
    }
    let mut vm = Vm::new(&app.original, spec, image, StackBank::Mobile);
    vm.set_fuel(SessionConfig::default().fuel);
    let exit = match vm.run_entry(&mut host) {
        Ok(v) => v.map(RtVal::as_i),
        Err(e) => return Err(OffloadError::Vm(e)),
    };
    let total = spec.cycles_to_seconds(vm.clock.cycles);
    let mut timeline = PowerTimeline::new();
    timeline.push(PowerState::Compute, total);
    let energy = timeline.energy_mj(&spec.power);
    Ok(RunReport {
        name: app.original.name.clone(),
        console: host.console_utf8(),
        exit_code: exit,
        total_seconds: total,
        energy_mj: energy,
        breakdown: OverheadBreakdown {
            mobile_compute_s: total,
            ..Default::default()
        },
        timeline,
        ..Default::default()
    })
}

/// Run the partitioned program under the offload runtime with the no-op
/// collector (the default, allocation-free path).
///
/// # Errors
///
/// Simulated-execution failures.
pub fn run_offloaded(
    app: &CompiledApp,
    input: &WorkloadInput,
    cfg: &SessionConfig,
) -> Result<RunReport, OffloadError> {
    run_offloaded_traced(app, input, cfg, &mut NoopCollector)
}

/// Run the partitioned program under the offload runtime, streaming every
/// session event into `obs`. With a recording collector the returned
/// report also carries a [`offload_obs::MetricsSnapshot`].
///
/// # Errors
///
/// Simulated-execution failures.
pub fn run_offloaded_traced(
    app: &CompiledApp,
    input: &WorkloadInput,
    cfg: &SessionConfig,
    obs: &mut dyn Collector,
) -> Result<RunReport, OffloadError> {
    run_offloaded_pooled(app, input, cfg, obs, &mut SessionPool::new())
}

/// Reusable per-worker session resources: the page-frame arenas backing
/// the simulated mobile and server address spaces. Loading an image into
/// a pooled [`Memory`] recycles its frames instead of growing the heap,
/// so in steady state a worker running session after session allocates
/// no new page frames at all ([`SessionPool::frame_allocs`] stays flat —
/// the farm's pooled-reuse gate).
#[derive(Debug)]
pub struct SessionPool {
    mobile: Memory,
    server: Memory,
}

impl SessionPool {
    /// An empty pool; the first session through it allocates the arenas.
    #[must_use]
    pub fn new() -> Self {
        SessionPool {
            mobile: Memory::new(BackingPolicy::DemandZero),
            server: Memory::new(BackingPolicy::DemandZero),
        }
    }

    /// Heap page-frame allocations across the pool's lifetime (recycled
    /// frames do not count). Flat across two identical sessions means the
    /// second reused every frame of the first. A failed session forfeits
    /// its arenas, so the counter restarts from the replacement arenas.
    #[must_use]
    pub fn frame_allocs(&self) -> u64 {
        self.mobile.frame_allocs() + self.server.frame_allocs()
    }

    fn take_mobile(&mut self) -> Memory {
        std::mem::replace(&mut self.mobile, Memory::new(BackingPolicy::DemandZero))
    }

    fn take_server(&mut self) -> Memory {
        std::mem::replace(&mut self.server, Memory::new(BackingPolicy::DemandZero))
    }
}

impl Default for SessionPool {
    fn default() -> Self {
        Self::new()
    }
}

/// [`run_offloaded_traced`] borrowing its page-frame arenas from `pool`
/// and returning them when the session completes. Byte-identical to the
/// unpooled path — pooling only changes where the frames come from.
///
/// # Errors
///
/// Simulated-execution failures (the failed session's arenas are dropped;
/// the pool refills with fresh ones on the next call).
#[allow(clippy::too_many_lines)]
pub fn run_offloaded_pooled(
    app: &CompiledApp,
    input: &WorkloadInput,
    cfg: &SessionConfig,
    obs: &mut dyn Collector,
    pool: &mut SessionPool,
) -> Result<RunReport, OffloadError> {
    let mobile_image =
        loader::load_into(&app.mobile, &cfg.mobile.data_layout(), pool.take_mobile())?;
    // The server process starts with an empty address space: everything it
    // touches arrives by prefetch or copy-on-demand.
    let mut server_image =
        loader::load_into(&app.server, &cfg.mobile.data_layout(), pool.take_server())?;
    server_image.mem.clear();
    server_image.mem.set_policy(BackingPolicy::FaultOnAbsent);
    // Delta write-back diffs dirty pages against their faulted-in bytes;
    // the flag survives the per-offload `clear()` teardown.
    server_image
        .mem
        .set_track_baselines(cfg.delta_writeback && cfg.batch);
    // The stride predictor feeds on the server VM's page-access sequence
    // (TLB-miss log); the other modes leave the hot path untouched.
    server_image
        .mem
        .set_access_log(cfg.stream_mode == StreamMode::Stride);

    let mut mobile_vm = Vm::new(&app.mobile, &cfg.mobile, mobile_image, StackBank::Mobile);
    mobile_vm.set_fuel(cfg.fuel);
    let mut server_vm = Vm::new(&app.server, &cfg.server, server_image, StackBank::Server);
    server_vm.set_fuel(cfg.fuel);

    let mut local = LocalHost::new();
    local.set_stdin(input.stdin.clone());
    for (name, data) in &input.files {
        local.add_file(name.clone(), data.clone());
    }

    let mut wrappers = HashMap::new();
    for task in &app.plan.tasks {
        let w = app
            .server
            .function_by_name(&format!("__server_{}", task.name))
            .ok_or_else(|| {
                OffloadError::Other(format!("missing server wrapper for {}", task.name))
            })?;
        wrappers.insert(task.id, w);
    }

    let mut host = SessionHost {
        plan: &app.plan,
        cfg,
        obs,
        server_vm,
        local,
        server_heap: HeapAllocator::new(
            uva_map::SERVER_LOCAL_HEAP,
            uva_map::SERVER_LOCAL_HEAP + 0x0100_0000,
        ),
        channel: Channel::new(cfg.link.clone()),
        timeline: PowerTimeline::new(),
        wrappers,
        pending_args: Vec::new(),
        pending_return: None,
        stat: SessionStats::default(),
        last_mobile_cycles: 0,
        fn_map_cycles: 0,
        remote_io_s: 0.0,
        comm_s: 0.0,
        decompress_s: 0.0,
        server_cycles_total: 0,
        bandwidth: BandwidthTracker::new(),
        stream: StreamEngine::new(cfg.stream_mode, cfg.fault_ahead, cfg.page_history.clone()),
        stall_saved_s: 0.0,
    };

    let exit = match mobile_vm.run_entry(&mut host) {
        Ok(v) => v.map(RtVal::as_i),
        Err(e) => return Err(OffloadError::Vm(e)),
    };
    host.account_mobile(mobile_vm.clock.cycles);

    // The VMs are done; reclaim both page-frame arenas for the pool
    // before the report is assembled.
    let mobile_cycles = mobile_vm.clock.cycles;
    pool.mobile = mobile_vm.into_memory();
    pool.server = host.server_vm.into_memory();

    let mobile_hz = cfg.mobile.clock_hz as f64;
    let server_hz = cfg.server.clock_hz as f64;
    let fn_map_s = host.fn_map_cycles as f64 / server_hz;
    let breakdown = OverheadBreakdown {
        mobile_compute_s: mobile_cycles as f64 / mobile_hz + host.decompress_s,
        server_compute_s: (host.server_cycles_total as f64 / server_hz - fn_map_s).max(0.0),
        fn_ptr_translation_s: fn_map_s,
        remote_io_s: host.remote_io_s,
        communication_s: host.comm_s,
    };
    let energy = host.timeline.energy_mj(&cfg.mobile.power);
    let report = RunReport {
        name: app.mobile.name.clone(),
        console: host.local.console_utf8(),
        exit_code: exit,
        total_seconds: host.timeline.total_seconds(),
        energy_mj: energy,
        breakdown,
        upload: host.channel.upload_stats(),
        download: host.channel.download_stats(),
        offload_attempts: host.stat.attempts,
        offloads_performed: host.stat.performed,
        offloads_refused: host.stat.refused,
        demand_page_fetches: host.stat.demand_fetches,
        prefetched_pages: host.stat.prefetched,
        pages_streamed: host.stat.streamed,
        stream_hits: host.stat.stream_hits,
        stream_wasted_pages: host.stat.stream_wasted,
        stall_s_saved: host.stall_saved_s,
        dirty_pages_written_back: host.stat.dirty_back,
        fn_map_translations: host.stat.fn_maps,
        remote_io_calls: host.stat.remote_io_calls,
        oracle_faults_checked: host.stat.oracle_faults,
        oracle_dirty_checked: host.stat.oracle_dirty,
        baseline_snapshots_skipped: host.stat.baseline_skipped,
        timeline: host.timeline,
        events: host.channel.events().to_vec(),
        metrics: obs.metrics_snapshot(),
    };

    // The Fig. 7 decomposition must account for the whole wall clock: the
    // breakdown lanes and the power timeline are two views of one stream.
    debug_assert!(
        (report.breakdown.total() - report.total_seconds).abs()
            <= 1e-9 * report.total_seconds.max(1e-9),
        "breakdown {} != wall {}",
        report.breakdown.total(),
        report.total_seconds
    );
    #[cfg(debug_assertions)]
    if obs.enabled() && obs.dropped_records() == 0 {
        if let Err(e) = crate::runtime::derive::check_reconciliation(&obs.recorded(), &report, cfg)
        {
            debug_assert!(false, "trace/report reconciliation failed: {e}");
        }
    }
    Ok(report)
}

#[derive(Debug, Default, Clone, Copy)]
struct SessionStats {
    attempts: u64,
    performed: u64,
    refused: u64,
    demand_fetches: u64,
    prefetched: u64,
    streamed: u64,
    stream_hits: u64,
    stream_wasted: u64,
    dirty_back: u64,
    fn_maps: u64,
    remote_io_calls: u64,
    oracle_faults: u64,
    oracle_dirty: u64,
    baseline_skipped: u64,
}

/// The mobile-side host orchestrating the whole session.
struct SessionHost<'a> {
    plan: &'a OffloadPlan,
    cfg: &'a SessionConfig,
    obs: &'a mut dyn Collector,
    server_vm: Vm<'a>,
    local: LocalHost,
    server_heap: HeapAllocator,
    channel: Channel,
    timeline: PowerTimeline,
    wrappers: HashMap<u32, FuncId>,
    pending_args: Vec<RtVal>,
    pending_return: Option<RtVal>,
    stat: SessionStats,
    last_mobile_cycles: u64,
    fn_map_cycles: u64,
    remote_io_s: f64,
    comm_s: f64,
    decompress_s: f64,
    server_cycles_total: u64,
    bandwidth: BandwidthTracker,
    stream: StreamEngine,
    stall_saved_s: f64,
}

impl SessionHost<'_> {
    /// Push the mobile compute interval since the last accounting point.
    fn account_mobile(&mut self, cycles_now: u64) {
        let delta = cycles_now.saturating_sub(self.last_mobile_cycles);
        if delta > 0 {
            self.obs
                .record(self.wall(), EventKind::MobileCompute { cycles: delta });
        }
        self.timeline.push_traced(
            &mut *self.obs,
            PowerState::Compute,
            delta as f64 / self.cfg.mobile.clock_hz as f64,
        );
        self.last_mobile_cycles = cycles_now;
    }

    fn wall(&self) -> f64 {
        self.timeline.total_seconds()
    }

    /// One frame across the link: records the transfer (and its obs
    /// event), advances the power timeline, and charges the duration to
    /// the given Fig. 7 cost lane. Returns the transfer duration.
    fn send(
        &mut self,
        dir: Direction,
        kind: MsgKind,
        raw: u64,
        wire: u64,
        lane: CostLane,
        power: PowerState,
    ) -> f64 {
        let start = self.timeline.total_seconds();
        let d = self
            .channel
            .transfer_traced(&mut *self.obs, start, dir, kind, raw, wire, lane);
        self.timeline.push_traced(&mut *self.obs, power, d);
        match lane {
            CostLane::Comm => self.comm_s += d,
            CostLane::RemoteIo => self.remote_io_s += d,
            // Streamed frames never go through send(): they occupy the
            // link without stalling the timeline.
            CostLane::Stream => {}
        }
        d
    }

    #[allow(clippy::too_many_lines)]
    fn do_offload(
        &mut self,
        task_id: u32,
        args: &[RtVal],
        ctx: &mut HostCtx<'_>,
    ) -> Result<RtVal, VmError> {
        let task = self
            .plan
            .task(task_id)
            .ok_or_else(|| VmError::Trap(format!("unknown offload task {task_id}")))?
            .clone();
        let wrapper = *self
            .wrappers
            .get(&task_id)
            .ok_or_else(|| VmError::Trap(format!("no wrapper for task {task_id}")))?;
        self.stat.performed += 1;
        self.account_mobile(ctx.clock.cycles);
        self.obs.record(
            self.wall(),
            EventKind::Begin(ObsSpan::Offload { task: task_id }),
        );

        // ---- initialization (§4) -----------------------------------------
        // Resolve this region's certificate. The session only *acts* on a
        // precise one (exact page sets, no coarse ranges): an imprecise
        // certificate is reported and otherwise ignored, so execution is
        // bit-identical to the uncertified path.
        let cert: Option<RegionCertificate> = if self.cfg.certificates {
            let c = self.plan.certificate(task_id).cloned();
            if let Some(c) = &c {
                self.obs.record(
                    self.wall(),
                    EventKind::Certificate {
                        task: task_id,
                        read_pages: c.read.pages().len() as u32,
                        write_pages: c.write.pages().len() as u32,
                        readonly_pages: c.proven_readonly.len() as u32,
                        precise: c.is_precise(),
                    },
                );
            }
            c.filter(RegionCertificate::is_precise)
        } else {
            None
        };
        let faults_before = self.stat.oracle_faults;
        let dirty_before = self.stat.oracle_dirty;

        // Page-table snapshot: the server learns which pages exist on the
        // mobile device; the rest are demand-zero. With a precise
        // certificate the advertisement shrinks to the certified
        // footprint — pages the region provably never touches stay off
        // the wire (smaller request frame, tighter prefetch and
        // fault-ahead windows). Any fault outside the footprint is a
        // certificate violation and traps before it could zero-fill.
        let mobile_present: BTreeSet<u64> = match &cert {
            Some(c) => ctx
                .mem
                .present_pages()
                .filter(|&p| c.may_access(p))
                .collect(),
            None => ctx.mem.present_pages().collect(),
        };

        // Baseline snapshots are only ever consumed when a dirty
        // non-private page is delta-diffed at finalization; the certified
        // may-write set bounds those, so every other first write skips
        // the 4 KiB pre-write clone.
        if let Some(c) = &cert {
            if self.server_vm.mem.tracks_baselines() {
                let filter: std::collections::BTreeSet<u64> =
                    c.write.pages().iter().copied().collect();
                self.server_vm.mem.set_baseline_filter(Some(filter));
            }
        }

        // Request: task id, stack pointer, page-table summary, arguments —
        // a real encoded frame; its length is what crosses the link.
        let req_msg = Message::OffloadRequest {
            task_id,
            stack_pointer: ctx.sp,
            args: args
                .iter()
                .map(|v| match v {
                    RtVal::I(i) => (*i as u64, false),
                    RtVal::F(f) => (f.to_bits(), true),
                })
                .collect(),
            present_pages: mobile_present.iter().copied().collect(),
        };
        let req_bytes = frame::encoded_len(&req_msg);
        let d = self.send(
            Direction::MobileToServer,
            MsgKind::OffloadRequest,
            req_bytes,
            req_bytes,
            CostLane::Comm,
            PowerState::Transmit,
        );
        self.bandwidth.observe(req_bytes, d);

        // Prefetch (or eager full transfer when copy-on-demand is ablated).
        let prefetch_pages: Vec<u64> = if !self.cfg.copy_on_demand {
            mobile_present.iter().copied().collect()
        } else if self.cfg.prefetch {
            task.prefetch_pages
                .iter()
                .copied()
                .filter(|p| mobile_present.contains(p))
                .collect()
        } else {
            Vec::new()
        };
        if !prefetch_pages.is_empty() {
            let mut blob = Vec::with_capacity(prefetch_pages.len() * PAGE_SIZE as usize);
            let mut page_buf = vec![0u8; PAGE_SIZE as usize];
            for p in &prefetch_pages {
                ctx.mem
                    .read(p * PAGE_SIZE, &mut page_buf)
                    .map_err(VmError::Mem)?;
                blob.extend_from_slice(&page_buf);
            }
            // Sparse upload: a page the server has never seen is demand-
            // zero, so the write-back delta codec diffs it against an
            // implicit zero page (same per-page full fallback). One knob —
            // `delta_writeback` — ablates sub-page transfers both ways.
            let use_delta = self.cfg.delta_writeback && self.cfg.batch;
            let delta_blob = use_delta.then(|| {
                let deltas: Vec<delta::PageDelta> = prefetch_pages
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let cur = &blob[i * PAGE_SIZE as usize..][..PAGE_SIZE as usize];
                        delta::page_delta(*p, Some(&ZERO_PAGE), cur, delta::MIN_GAP)
                    })
                    .collect();
                delta::encode(&deltas, PAGE_SIZE as usize)
            });
            if let Some(db) = &delta_blob {
                // Install through the wire codec so the production path
                // exercises decode on the server end too.
                let decoded = delta::decode(db, PAGE_SIZE as usize)
                    .expect("self-encoded prefetch delta decodes");
                let mut page = vec![0u8; PAGE_SIZE as usize];
                for d in &decoded {
                    page.fill(0);
                    delta::apply(&d.payload, &mut page)
                        .expect("self-encoded prefetch delta applies");
                    self.server_vm.mem.install_page(d.page, &page);
                }
            } else {
                for (i, p) in prefetch_pages.iter().enumerate() {
                    let bytes = &blob[i * PAGE_SIZE as usize..][..PAGE_SIZE as usize];
                    self.server_vm.mem.install_page(*p, bytes);
                }
            }
            #[cfg(debug_assertions)]
            for (i, p) in prefetch_pages.iter().enumerate() {
                debug_assert_eq!(
                    self.server_vm.mem.page_bytes(*p).expect("just installed"),
                    &blob[i * PAGE_SIZE as usize..][..PAGE_SIZE as usize],
                    "prefetch install mismatch on page {p:#x}"
                );
            }
            self.stat.prefetched += prefetch_pages.len() as u64;
            self.obs.record(
                self.wall(),
                EventKind::PrefetchBatch {
                    pages: prefetch_pages.len() as u64,
                    bytes: blob.len() as u64,
                },
            );
            if self.cfg.batch {
                // `msg_len` is the logical full-page payload; the sparse
                // encoding (when it wins) only changes the wire bytes.
                let msg_len = frame::encoded_len(&Message::Pages {
                    page_numbers: prefetch_pages.clone(),
                    bytes: blob.clone(),
                });
                let wire = delta_blob.as_ref().map_or(msg_len, |db| {
                    msg_len.min(frame::encoded_len(&Message::DeltaPages {
                        bytes: db.clone(),
                    }))
                });
                let d = self.send(
                    Direction::MobileToServer,
                    MsgKind::Prefetch,
                    msg_len,
                    wire,
                    CostLane::Comm,
                    PowerState::Transmit,
                );
                self.bandwidth.observe(wire, d);
            } else {
                for _ in &prefetch_pages {
                    self.send(
                        Direction::MobileToServer,
                        MsgKind::Prefetch,
                        PAGE_SIZE,
                        PAGE_SIZE,
                        CostLane::Comm,
                        PowerState::Transmit,
                    );
                }
            }
        }

        // ---- offloading execution (§4) ------------------------------------
        self.pending_args = args.to_vec();
        self.pending_return = None;
        if self.stream.active() {
            // Stride runs don't survive across offload regions; the
            // adaptive window does, and the in-flight map is drained to
            // waste at every finalization, so it starts empty here.
            self.stream.stride = StrideDetector::default();
            self.stream.streamed_this_offload = 0;
            // Seed the predictor with the certified read set (empty when
            // uncertified: candidate lists stay bit-identical).
            self.stream.seed = cert
                .as_ref()
                .map(|c| c.read.pages().to_vec())
                .unwrap_or_default();
        }
        let server_cycles_before = self.server_vm.clock.cycles;
        #[cfg(debug_assertions)]
        let stream_hits_before = self.stat.stream_hits;
        let result = {
            let Self {
                obs,
                server_vm,
                local,
                server_heap,
                channel,
                timeline,
                cfg,
                stat,
                pending_args,
                pending_return,
                fn_map_cycles,
                remote_io_s,
                comm_s,
                bandwidth,
                stream,
                stall_saved_s,
                ..
            } = self;
            let mut bridge = ServerBridge {
                obs: &mut **obs,
                mobile_mem: ctx.mem,
                mobile_env: local,
                server_heap,
                channel,
                timeline,
                cfg,
                stat,
                pending_args,
                pending_return,
                fn_map_cycles,
                remote_io_s,
                comm_s,
                bandwidth,
                stream,
                stall_saved_s,
                stream_static: &task.prefetch_pages,
                mobile_present: &mobile_present,
                certificate: cert.as_ref(),
                last_server_cycles: server_cycles_before,
                server_fn_count: server_vm.module().function_count() as u64,
                io_batch: Vec::new(),
                pending_task: 0,
            };
            bridge.obs.record(
                bridge.timeline.total_seconds(),
                EventKind::Begin(ObsSpan::ServerExec { task: task_id }),
            );
            let r = server_vm.call_function(wrapper, &[], &mut bridge);
            // Remaining server compute shows up as mobile waiting time.
            let leftover = server_vm
                .clock
                .cycles
                .saturating_sub(bridge.last_server_cycles);
            bridge.timeline.push_traced(
                &mut *bridge.obs,
                PowerState::Waiting,
                leftover as f64 / cfg.server.clock_hz as f64,
            );
            bridge.obs.record(
                bridge.timeline.total_seconds(),
                EventKind::End(ObsSpan::ServerExec { task: task_id }),
            );
            let io_batch = std::mem::take(&mut bridge.io_batch);
            r.map(|v| (v, io_batch))
        };
        let (_, io_batch) = result?;
        let server_delta = self
            .server_vm
            .clock
            .cycles
            .saturating_sub(server_cycles_before);
        self.server_cycles_total += server_delta;
        if server_delta > 0 {
            self.obs.record(
                self.wall(),
                EventKind::ServerCompute {
                    cycles: server_delta,
                },
            );
        }
        if self.stream.active() {
            // Streamed pages the server never faulted on are pure waste:
            // their wire bytes crossed the link for nothing. Feed the
            // waste ratio back into the adaptive window. The drain clock
            // makes the `arrival == now` race well-defined: a fault at
            // that instant already took the page (a zero-residual hit),
            // so nothing here is double-counted.
            let leftovers = self.stream.in_flight.drain(self.wall());
            let wasted = leftovers.pages();
            #[cfg(debug_assertions)]
            {
                // Single-counting identity: every page streamed this
                // offload is exactly one of {hit, drained-as-waste}.
                let hits = self.stat.stream_hits - stream_hits_before;
                debug_assert_eq!(
                    hits + wasted,
                    self.stream.streamed_this_offload,
                    "streamed pages double- or un-counted"
                );
            }
            if wasted > 0 {
                let wire: u64 = leftovers.wire_bytes();
                self.stat.stream_wasted += wasted;
                self.obs.record(
                    self.wall(),
                    EventKind::StreamWaste {
                        pages: wasted,
                        wire_bytes: wire,
                    },
                );
            }
            let streamed = self.stream.streamed_this_offload;
            self.stream.window.observe_offload(streamed, wasted);
            // Observe-only: the window is empty once leftovers drain.
            self.obs.record(
                self.wall(),
                EventKind::QueueDepth {
                    queue: QueueLane::StreamWindow,
                    depth: 0,
                },
            );
        }

        // ---- finalization (§4) ---------------------------------------------
        // Flush batched remote output to the mobile console.
        if !io_batch.is_empty() {
            let wire = if self.cfg.compress {
                (lz::compress(&io_batch).len() as u64).min(io_batch.len() as u64)
            } else {
                io_batch.len() as u64
            };
            if self.cfg.compress {
                self.obs.record(
                    self.wall(),
                    EventKind::Compression {
                        raw_bytes: io_batch.len() as u64,
                        wire_bytes: wire,
                        decompress_s: 0.0,
                    },
                );
            }
            self.obs.record(
                self.wall(),
                EventKind::BatchFlush {
                    bytes: io_batch.len() as u64,
                },
            );
            // Observe-only: the batch queue drains to zero at the flush.
            self.obs.record(
                self.wall(),
                EventKind::QueueDepth {
                    queue: QueueLane::IoBatch,
                    depth: 0,
                },
            );
            self.send(
                Direction::ServerToMobile,
                MsgKind::RemoteIo,
                io_batch.len() as u64,
                wire,
                CostLane::RemoteIo,
                PowerState::Receive,
            );
            self.local.console_write(&io_batch);
        }

        // Dirty pages (server-private ranges excluded) go home, batched and
        // compressed.
        let dirty: Vec<u64> = self
            .server_vm
            .mem
            .dirty_pages()
            .filter(|p| !is_server_private_page(*p))
            .collect();
        // Oracle: every observed dirty page must sit inside the certified
        // may-write set — checked *before* the delta encode so a dirtied
        // read-only page fails loudly instead of diffing against a
        // baseline the filter never captured.
        if let Some(c) = &cert {
            for p in &dirty {
                if !c.may_write(*p) {
                    return Err(VmError::Trap(format!(
                        "certificate violation: task {task_id} dirtied page {p:#x}                          outside its certified may-write set"
                    )));
                }
            }
            self.stat.oracle_dirty += dirty.len() as u64;
        }
        if !dirty.is_empty() {
            let mut blob = Vec::with_capacity(dirty.len() * PAGE_SIZE as usize);
            for p in &dirty {
                blob.extend_from_slice(
                    self.server_vm
                        .mem
                        .page_bytes(*p)
                        .expect("dirty page present"),
                );
            }
            // `raw` is always the full-page message: the logical payload
            // of the write-back. Delta encoding (like compression) only
            // changes what crosses the wire.
            let raw = frame::encoded_len(&Message::Pages {
                page_numbers: dirty.clone(),
                bytes: blob.clone(),
            });
            // Sub-page delta: diff each dirty page against its faulted-in
            // baseline, falling back per page when the diff loses.
            let use_delta = self.cfg.delta_writeback && self.cfg.batch;
            let delta_blob = use_delta.then(|| {
                let deltas: Vec<delta::PageDelta> = dirty
                    .iter()
                    .map(|p| {
                        let cur = self
                            .server_vm
                            .mem
                            .page_bytes(*p)
                            .expect("dirty page present");
                        let base = self.server_vm.mem.baseline_bytes(*p);
                        delta::page_delta(*p, base, cur, delta::MIN_GAP)
                    })
                    .collect();
                delta::encode(&deltas, PAGE_SIZE as usize)
            });
            let delta_raw = delta_blob
                .as_ref()
                .map(|b| frame::encoded_len(&Message::DeltaPages { bytes: b.clone() }));
            let wire = match (&delta_blob, delta_raw) {
                // Delta path: best of full-page raw, plain delta, and
                // compressed delta (the full blob is never compressed
                // here — the delta blob is strictly cheaper to chew on).
                (Some(db), Some(draw)) => {
                    let mut w = draw.min(raw);
                    if self.cfg.compress {
                        w = w.min(frame::encoded_len(&Message::DeltaPages {
                            bytes: lz::compress(db),
                        }));
                    }
                    w
                }
                _ if self.cfg.compress => frame::encoded_len(&Message::Pages {
                    page_numbers: dirty.clone(),
                    bytes: lz::compress(&blob),
                })
                .min(raw),
                _ => raw,
            };
            if self.cfg.batch {
                let d = self.send(
                    Direction::ServerToMobile,
                    MsgKind::DirtyPage,
                    raw,
                    wire,
                    CostLane::Comm,
                    PowerState::Receive,
                );
                self.bandwidth.observe(wire, d);
            } else {
                for _ in &dirty {
                    let per = if self.cfg.compress {
                        wire / dirty.len() as u64
                    } else {
                        PAGE_SIZE
                    };
                    self.send(
                        Direction::ServerToMobile,
                        MsgKind::DirtyPage,
                        PAGE_SIZE,
                        per,
                        CostLane::Comm,
                        PowerState::Receive,
                    );
                }
            }
            if self.cfg.compress {
                // The mobile CPU decompresses the write-back (in delta
                // mode it only inflates the much smaller delta blob).
                let dec =
                    lz::decompress_seconds(delta_blob.as_ref().map_or(blob.len(), Vec::len) as u64);
                self.obs.record(
                    self.wall(),
                    EventKind::Compression {
                        raw_bytes: delta_raw.unwrap_or(raw),
                        wire_bytes: wire,
                        decompress_s: dec,
                    },
                );
                self.timeline
                    .push_traced(&mut *self.obs, PowerState::Compute, dec);
                self.decompress_s += dec;
            }
            if let Some(db) = &delta_blob {
                // Apply through the wire codec so the production path
                // exercises decode, not just the tests.
                let decoded =
                    delta::decode(db, PAGE_SIZE as usize).expect("self-encoded delta blob decodes");
                for d in &decoded {
                    match &d.payload {
                        delta::PagePayload::Full(bytes) => {
                            ctx.mem
                                .write(d.page * PAGE_SIZE, bytes)
                                .map_err(VmError::Mem)?;
                        }
                        delta::PagePayload::Runs(runs) => {
                            for r in runs {
                                ctx.mem
                                    .write(d.page * PAGE_SIZE + r.offset as u64, &r.bytes)
                                    .map_err(VmError::Mem)?;
                            }
                        }
                    }
                }
            } else {
                for (i, p) in dirty.iter().enumerate() {
                    let bytes = &blob[i * PAGE_SIZE as usize..(i + 1) * PAGE_SIZE as usize];
                    ctx.mem.write(p * PAGE_SIZE, bytes).map_err(VmError::Mem)?;
                }
            }
            #[cfg(debug_assertions)]
            for p in &dirty {
                // Delta apply must leave the mobile page byte-identical to
                // the server page, whichever path shipped it.
                let mut got = vec![0u8; PAGE_SIZE as usize];
                ctx.mem
                    .read(p * PAGE_SIZE, &mut got)
                    .map_err(VmError::Mem)?;
                debug_assert_eq!(
                    got.as_slice(),
                    self.server_vm
                        .mem
                        .page_bytes(*p)
                        .expect("dirty page present"),
                    "write-back mismatch on page {p:#x}"
                );
            }
            self.stat.dirty_back += dirty.len() as u64;
            self.obs.record(
                self.wall(),
                EventKind::DirtyWriteBack {
                    pages: dirty.len() as u64,
                    raw_bytes: raw,
                    wire_bytes: wire,
                },
            );
            if let Some(draw) = delta_raw {
                self.obs.record(
                    self.wall(),
                    EventKind::DeltaWriteBack {
                        pages: dirty.len() as u64,
                        full_bytes: raw,
                        delta_bytes: draw,
                    },
                );
            }
        }

        // Return value + termination signal.
        let ret_msg = Message::Return {
            task_id,
            value: match self.pending_return {
                Some(RtVal::F(f)) => f.to_bits(),
                Some(RtVal::I(i)) => i as u64,
                None => 0,
            },
            is_float: matches!(self.pending_return, Some(RtVal::F(_))),
            dirty_pages: self.stat.dirty_back as u32,
        };
        let ret_bytes = frame::encoded_len(&ret_msg);
        let d = self.send(
            Direction::ServerToMobile,
            MsgKind::Return,
            ret_bytes,
            ret_bytes,
            CostLane::Comm,
            PowerState::Receive,
        );
        self.bandwidth.observe(ret_bytes, d);

        // Tear the server process down (§4: the server does not keep the
        // offloading data).
        self.server_vm.mem.clear();
        if cert.is_some() {
            let skipped = self.server_vm.mem.baselines_skipped();
            self.stat.baseline_skipped += skipped;
            self.server_vm.mem.set_baseline_filter(None);
            self.obs.record(
                self.wall(),
                EventKind::OracleCheck {
                    task: task_id,
                    faults_checked: (self.stat.oracle_faults - faults_before) as u32,
                    dirty_checked: (self.stat.oracle_dirty - dirty_before) as u32,
                    baseline_skipped: skipped as u32,
                },
            );
        }
        self.server_heap = HeapAllocator::new(
            uva_map::SERVER_LOCAL_HEAP,
            uva_map::SERVER_LOCAL_HEAP + 0x0100_0000,
        );
        self.obs.record(
            self.wall(),
            EventKind::End(ObsSpan::Offload { task: task_id }),
        );

        Ok(self.pending_return.take().unwrap_or(RtVal::I(0)))
    }
}

fn is_server_private_page(page: u64) -> bool {
    let addr = page * PAGE_SIZE;
    let server_stack = (uva_map::SERVER_STACK_TOP - uva_map::STACK_SIZE..uva_map::SERVER_STACK_TOP)
        .contains(&addr);
    let server_heap =
        (uva_map::SERVER_LOCAL_HEAP..uva_map::SERVER_LOCAL_HEAP + 0x0100_0000).contains(&addr);
    server_stack || server_heap
}

/// The batch one demand fault pulls: the faulting page plus the run of
/// successors inside `window` that exist on the mobile device, are not
/// server-private, are not already on the server, and are not `skip`ped
/// (in flight on the stream). The run stops at the first ineligible
/// page — fault-ahead amortizes *sequential* access, so a hole ends it.
fn plan_fault_window(
    page: u64,
    window: u64,
    mobile_present: &BTreeSet<u64>,
    server_mem: &Memory,
    skip: &dyn Fn(u64) -> bool,
) -> Vec<u64> {
    let mut pages = vec![page];
    for p in page + 1..page + window {
        if mobile_present.contains(&p)
            && !is_server_private_page(p)
            && !server_mem.is_present(p)
            && !skip(p)
        {
            pages.push(p);
        } else {
            break;
        }
    }
    pages
}

impl Host for SessionHost<'_> {
    fn page_fault(&mut self, page: u64, _ctx: &mut HostCtx<'_>) -> Result<(), VmError> {
        Err(VmError::Mem(MemError::PageFault { page }))
    }

    fn builtin(
        &mut self,
        b: Builtin,
        args: &[RtVal],
        ctx: &mut HostCtx<'_>,
    ) -> Result<Option<RtVal>, VmError> {
        match b {
            Builtin::IsProfitable => {
                self.stat.attempts += 1;
                let task_id = args[0].as_i() as u32;
                let (go, t_gain_s, t_comm_s, bandwidth_bps) = if !self.cfg.dynamic_estimation {
                    // Estimation ablated: every dispatch goes through.
                    (true, 0.0, 0.0, 0)
                } else if let Some(task) = self.plan.task(task_id) {
                    let ratio = self.cfg.mobile.performance_ratio(&self.cfg.server);
                    // §6 extension: with adaptive bandwidth on, divide by
                    // the *observed* effective throughput once transfers
                    // have been seen, not the link's nominal figure.
                    let bw = if self.cfg.adaptive_bandwidth {
                        self.bandwidth
                            .estimate_bps()
                            .unwrap_or(self.cfg.link.bandwidth_bps)
                    } else {
                        self.cfg.link.bandwidth_bps
                    };
                    // With a precise certificate, fold the certified
                    // footprint into the wire-cost term: the region
                    // provably cannot ship more than it may access.
                    let cert = self
                        .cfg
                        .certificates
                        .then(|| self.plan.certificate(task_id))
                        .flatten()
                        .filter(|c| c.is_precise());
                    let (go, est) = if let Some(c) = cert {
                        crate::runtime::estimator::decide_certified(
                            task,
                            c.footprint_bytes(PAGE_SIZE),
                            ratio,
                            bw,
                        )
                    } else {
                        crate::runtime::estimator::decide_with_bandwidth(task, ratio, bw)
                    };
                    (go, est.t_gain_s, est.t_comm_s, bw)
                } else {
                    (false, 0.0, 0.0, 0)
                };
                self.obs.record(
                    self.timeline.total_seconds(),
                    EventKind::OffloadDecision {
                        task: task_id,
                        accepted: go,
                        t_gain_s,
                        t_comm_s,
                        bandwidth_bps,
                    },
                );
                if !go {
                    self.stat.refused += 1;
                }
                Ok(Some(RtVal::I(i64::from(go))))
            }
            Builtin::OffloadCall | Builtin::OffloadCallF => {
                let task_id = args[0].as_i() as u32;
                let v = self.do_offload(task_id, &args[1..], ctx)?;
                Ok(Some(v))
            }
            other => self.local.builtin(other, args, ctx),
        }
    }
}

/// The server-side host active while an offloaded task runs: it services
/// copy-on-demand faults out of the mobile memory, shares the unified
/// heap, translates function pointers and routes remote I/O home.
struct ServerBridge<'x> {
    obs: &'x mut dyn Collector,
    mobile_mem: &'x mut Memory,
    mobile_env: &'x mut LocalHost,
    server_heap: &'x mut HeapAllocator,
    channel: &'x mut Channel,
    timeline: &'x mut PowerTimeline,
    cfg: &'x SessionConfig,
    stat: &'x mut SessionStats,
    pending_args: &'x Vec<RtVal>,
    pending_return: &'x mut Option<RtVal>,
    fn_map_cycles: &'x mut u64,
    remote_io_s: &'x mut f64,
    comm_s: &'x mut f64,
    stream: &'x mut StreamEngine,
    stall_saved_s: &'x mut f64,
    /// The active task's profile-predicted page list — the `Static`
    /// predictor's candidate stream.
    stream_static: &'x [u64],
    mobile_present: &'x BTreeSet<u64>,
    /// The active region's precise certificate, when the session is
    /// acting on one — the fault oracle checks every serviced fault
    /// against its may-access footprint.
    certificate: Option<&'x RegionCertificate>,
    bandwidth: &'x mut BandwidthTracker,
    last_server_cycles: u64,
    server_fn_count: u64,
    io_batch: Vec<u8>,
    /// Task id for the `accept_offload` builtin (exercised by the
    /// `__listen` loop in dedicated tests; the session drives wrappers
    /// directly).
    pending_task: u32,
}

impl ServerBridge<'_> {
    /// Convert server compute since the last event into mobile waiting
    /// time on the timeline.
    fn account_waiting(&mut self, server_cycles_now: u64) {
        let delta = server_cycles_now.saturating_sub(self.last_server_cycles);
        self.timeline.push_traced(
            &mut *self.obs,
            PowerState::Waiting,
            delta as f64 / self.cfg.server.clock_hz as f64,
        );
        self.last_server_cycles = server_cycles_now;
    }

    fn wall(&self) -> f64 {
        self.timeline.total_seconds()
    }

    /// One frame across the link (see [`SessionHost::send`]).
    fn send(
        &mut self,
        dir: Direction,
        kind: MsgKind,
        raw: u64,
        wire: u64,
        lane: CostLane,
        power: PowerState,
    ) -> f64 {
        let start = self.timeline.total_seconds();
        let d = self
            .channel
            .transfer_traced(&mut *self.obs, start, dir, kind, raw, wire, lane);
        self.timeline.push_traced(&mut *self.obs, power, d);
        match lane {
            CostLane::Comm => *self.comm_s += d,
            CostLane::RemoteIo => *self.remote_io_s += d,
            // Streamed frames never go through send(): they occupy the
            // link without stalling the timeline (see `pump_stream`).
            CostLane::Stream => {}
        }
        d
    }

    /// Fetch one page from the mobile device (or zero-fill a page the
    /// mobile never had), installing it into the server memory.
    fn fault_in(&mut self, page: u64, ctx: &mut HostCtx<'_>) -> Result<(), VmError> {
        self.account_waiting(ctx.clock.cycles);
        // Oracle: a fault on a shared (non-private) page outside the
        // certified footprint means the static analysis was wrong —
        // fail loudly before the demand-zero branch could silently hand
        // the region a page of zeros.
        if let Some(c) = self.certificate {
            if !is_server_private_page(page) {
                if !c.may_access(page) {
                    return Err(VmError::Trap(format!(
                        "certificate violation: task {} faulted on page {page:#x}                          outside its certified footprint",
                        c.task
                    )));
                }
                self.stat.oracle_faults += 1;
            }
        }
        if is_server_private_page(page) || !self.mobile_present.contains(&page) {
            // Server-private pages and pages absent from the mobile page
            // table are demand-zero: no network traffic.
            ctx.mem.install_page(page, &ZERO_PAGE);
            return Ok(());
        }
        if !self.stream.active() {
            return self.demand_fetch(page, self.cfg.fault_ahead.max(1), ctx);
        }
        // Streaming path: feed the stride detector the server's page-access
        // sequence up to (and including) this fault, then either absorb the
        // fault from an in-flight streamed page or fall back to a
        // synchronous batch under the adaptive window.
        for p in ctx.mem.take_access_log() {
            self.stream.stride.observe(p);
        }
        self.stream.stride.observe(page);
        if let Some(fl) = self.stream.in_flight.take(page) {
            self.stream_hit(page, fl, ctx)?;
        } else {
            let window = self.stream.window.window();
            self.demand_fetch(page, window, ctx)?;
        }
        self.pump_stream(page, ctx)?;
        self.note_stream_depth();
        Ok(())
    }

    /// Service a fault from an in-flight streamed page: pay only the
    /// residual arrival time instead of a full round trip, and install
    /// the page.
    fn stream_hit(
        &mut self,
        page: u64,
        fl: InFlightPage,
        ctx: &mut HostCtx<'_>,
    ) -> Result<(), VmError> {
        let now = self.timeline.total_seconds();
        let residual = (fl.arrival_s - now).max(0.0);
        self.timeline
            .push_traced(&mut *self.obs, PowerState::Transmit, residual);
        *self.comm_s += residual;
        // What the synchronous path would have stalled for this one page:
        // the control round trip plus the page transfer itself.
        let req_len = frame::encoded_len(&Message::PageRequest { page, count: 1 });
        let link = &self.channel.link;
        let saved =
            (link.transfer_time(req_len) + link.transfer_time(fl.wire_bytes) - residual).max(0.0);
        *self.stall_saved_s += saved;
        self.stat.stream_hits += 1;
        self.obs.record(
            self.wall(),
            EventKind::StreamHit {
                page,
                residual_s: residual,
                saved_s: saved,
            },
        );
        // The mobile VM is frozen while the server runs, so reading the
        // page now yields exactly the bytes put on the wire at schedule
        // time — results stay byte-identical to the synchronous path.
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        self.mobile_mem
            .read(page * PAGE_SIZE, &mut buf)
            .map_err(VmError::Mem)?;
        ctx.mem.install_page(page, &buf);
        Ok(())
    }

    /// Push predicted pages onto the link while the server keeps running.
    /// Link occupancy is modeled by the engine's [`StreamWindow`]; nothing
    /// stalls the timeline and nothing installs into server memory until
    /// a fault lands on an in-flight page.
    fn pump_stream(&mut self, fault_page: u64, ctx: &mut HostCtx<'_>) -> Result<(), VmError> {
        let candidates = {
            let mem = &*ctx.mem;
            let mobile_present = self.mobile_present;
            let eligible = move |p: u64| {
                mobile_present.contains(&p) && !is_server_private_page(p) && !mem.is_present(p)
            };
            self.stream
                .candidates(fault_page, self.stream_static, &eligible)
        };
        if candidates.is_empty() {
            return Ok(());
        }
        let use_delta = self.cfg.delta_writeback && self.cfg.batch;
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        for p in candidates {
            self.mobile_mem
                .read(p * PAGE_SIZE, &mut buf)
                .map_err(VmError::Mem)?;
            let msg = Message::StreamPage {
                page: p,
                bytes: std::mem::take(&mut buf),
            };
            let full = frame::encoded_len(&msg);
            let Message::StreamPage { bytes, .. } = msg else {
                unreachable!()
            };
            buf = bytes;
            // Like demand pages, streamed pages ride the sparse codec
            // against the implicit zero baseline when the delta knob is on.
            let wire = if use_delta {
                let d = delta::page_delta(p, Some(&ZERO_PAGE), &buf, delta::MIN_GAP);
                let db = delta::encode(&[d], PAGE_SIZE as usize);
                full.min(frame::encoded_len(&Message::DeltaPages { bytes: db }))
            } else {
                full
            };
            let now = self.timeline.total_seconds();
            let _arrival = self.stream.in_flight.schedule_traced(
                &mut *self.obs,
                now,
                p,
                wire,
                &self.channel.link,
            );
            // Occupancy-only frame: traffic stats and the trace see it,
            // but no timeline stall and no comm_s charge (CostLane::Stream
            // is ignored by the replay's lane sums).
            self.channel.transfer_traced(
                &mut *self.obs,
                now,
                Direction::MobileToServer,
                MsgKind::StreamPage,
                full,
                wire,
                CostLane::Stream,
            );
            self.stat.streamed += 1;
            self.stream.streamed_this_offload += 1;
            self.obs.record(
                now,
                EventKind::PrefetchPredict {
                    page: p,
                    window: self.stream.window.window() as u32,
                },
            );
        }
        Ok(())
    }

    /// Synchronous copy-on-demand fetch: a control round trip followed by
    /// the faulting page plus its fault-ahead successors in one batch.
    fn demand_fetch(
        &mut self,
        page: u64,
        window: u64,
        ctx: &mut HostCtx<'_>,
    ) -> Result<(), VmError> {
        self.stat.demand_fetches += 1;
        // Fault-ahead: pull the faulting page plus the next mobile-present
        // pages not yet on the server, amortizing the round trip over
        // sequential access patterns. Pages already in flight on the
        // stream are skipped — their bytes are on the wire already.
        let pages = plan_fault_window(page, window, self.mobile_present, ctx.mem, &|p| {
            self.stream.in_flight.contains(p)
        });
        let mut blob = vec![0u8; PAGE_SIZE as usize * pages.len()];
        for (i, p) in pages.iter().enumerate() {
            self.mobile_mem
                .read(
                    p * PAGE_SIZE,
                    &mut blob[i * PAGE_SIZE as usize..][..PAGE_SIZE as usize],
                )
                .map_err(VmError::Mem)?;
        }
        // Control request (server→mobile), then the pages (mobile→server),
        // batched into one message. Like prefetch, the demand pages ride
        // the sparse codec against an implicit zero baseline when the
        // delta knob is on; `payload` stays the logical full-page size.
        let req_len = frame::encoded_len(&Message::PageRequest {
            page,
            count: pages.len() as u32,
        });
        let d1 = self.send(
            Direction::ServerToMobile,
            MsgKind::Control,
            req_len,
            req_len,
            CostLane::Comm,
            PowerState::Receive,
        );
        let payload = frame::encoded_len(&Message::Pages {
            page_numbers: pages.clone(),
            bytes: blob.clone(),
        });
        let use_delta = self.cfg.delta_writeback && self.cfg.batch;
        let delta_blob = use_delta.then(|| {
            let deltas: Vec<delta::PageDelta> = pages
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let cur = &blob[i * PAGE_SIZE as usize..][..PAGE_SIZE as usize];
                    delta::page_delta(*p, Some(&ZERO_PAGE), cur, delta::MIN_GAP)
                })
                .collect();
            delta::encode(&deltas, PAGE_SIZE as usize)
        });
        let wire = delta_blob.as_ref().map_or(payload, |db| {
            payload.min(frame::encoded_len(&Message::DeltaPages {
                bytes: db.clone(),
            }))
        });
        let d2 = self.send(
            Direction::MobileToServer,
            MsgKind::DemandPage,
            payload,
            wire,
            CostLane::Comm,
            PowerState::Transmit,
        );
        self.bandwidth.observe(wire, d1 + d2);
        self.obs.record(
            self.wall(),
            EventKind::DemandFault {
                page,
                pages: pages.len() as u32,
                window: window as u32,
                duration_s: d1 + d2,
            },
        );
        if let Some(db) = &delta_blob {
            let decoded =
                delta::decode(db, PAGE_SIZE as usize).expect("self-encoded demand delta decodes");
            let mut buf = vec![0u8; PAGE_SIZE as usize];
            for d in &decoded {
                buf.fill(0);
                delta::apply(&d.payload, &mut buf).expect("self-encoded demand delta applies");
                ctx.mem.install_page(d.page, &buf);
            }
        } else {
            for (i, p) in pages.iter().enumerate() {
                ctx.mem
                    .install_page(*p, &blob[i * PAGE_SIZE as usize..][..PAGE_SIZE as usize]);
            }
        }
        #[cfg(debug_assertions)]
        for (i, p) in pages.iter().enumerate() {
            debug_assert_eq!(
                ctx.mem.page_bytes(*p).expect("just installed"),
                &blob[i * PAGE_SIZE as usize..][..PAGE_SIZE as usize],
                "demand install mismatch on page {p:#x}"
            );
        }
        Ok(())
    }

    /// Read a C string from server memory, faulting pages in as needed.
    fn read_cstr_faulting(&mut self, ctx: &mut HostCtx<'_>, addr: u64) -> Result<Vec<u8>, VmError> {
        loop {
            match ctx.mem.read_cstr(addr) {
                Ok(v) => return Ok(v),
                Err(MemError::PageFault { page }) => self.fault_in(page, ctx)?,
                Err(e) => return Err(VmError::Mem(e)),
            }
        }
    }

    /// Read raw bytes from server memory with fault service.
    fn read_faulting(
        &mut self,
        ctx: &mut HostCtx<'_>,
        addr: u64,
        buf: &mut [u8],
    ) -> Result<(), VmError> {
        loop {
            match ctx.mem.read(addr, buf) {
                Ok(()) => return Ok(()),
                Err(MemError::PageFault { page }) => self.fault_in(page, ctx)?,
                Err(e) => return Err(VmError::Mem(e)),
            }
        }
    }

    /// Write raw bytes to server memory with fault service.
    fn write_faulting(
        &mut self,
        ctx: &mut HostCtx<'_>,
        addr: u64,
        buf: &[u8],
    ) -> Result<(), VmError> {
        loop {
            match ctx.mem.write(addr, buf) {
                Ok(()) => return Ok(()),
                Err(MemError::PageFault { page }) => self.fault_in(page, ctx)?,
                Err(e) => return Err(VmError::Mem(e)),
            }
        }
    }

    /// Format a printf call against *server* memory, faulting in the
    /// format string and any `%s` payloads.
    fn render_remote(&mut self, args: &[RtVal], ctx: &mut HostCtx<'_>) -> Result<Vec<u8>, VmError> {
        let fmt = self.read_cstr_faulting(ctx, args[0].as_addr())?;
        let io_args: Vec<IoArg> = args[1..]
            .iter()
            .map(|v| match v {
                RtVal::I(i) => IoArg::I(*i),
                RtVal::F(f) => IoArg::F(*f),
            })
            .collect();
        loop {
            let fault_page: Option<u64>;
            let attempt = {
                let mem = &mut *ctx.mem;
                let cell = std::cell::RefCell::new(mem);
                let fault_slot = std::cell::Cell::new(None::<u64>);
                let mut resolver = |addr: u64| -> Result<Vec<u8>, IoError> {
                    match cell.borrow_mut().read_cstr(addr) {
                        Ok(v) => Ok(v),
                        Err(MemError::PageFault { page }) => {
                            fault_slot.set(Some(page));
                            Err(IoError {
                                message: format!("fault at page {page}"),
                            })
                        }
                        Err(e) => Err(IoError {
                            message: e.to_string(),
                        }),
                    }
                };
                let r = io::format_c(&fmt, &io_args, &mut resolver);
                fault_page = fault_slot.get();
                r
            };
            match attempt {
                Ok(bytes) => return Ok(bytes),
                Err(_) if fault_page.is_some() => {
                    self.fault_in(fault_page.expect("just checked"), ctx)?;
                }
                Err(e) => return Err(VmError::Io(e)),
            }
        }
    }

    /// A round trip for a remote I/O request: `req` bytes server→mobile,
    /// `resp` bytes mobile→server. Returns the total duration.
    fn remote_round_trip(&mut self, req: u64, resp: u64) -> f64 {
        let d1 = self.send(
            Direction::ServerToMobile,
            MsgKind::RemoteIo,
            req,
            req,
            CostLane::RemoteIo,
            PowerState::Receive,
        );
        let d2 = self.send(
            Direction::MobileToServer,
            MsgKind::RemoteIo,
            resp,
            resp,
            CostLane::RemoteIo,
            PowerState::Transmit,
        );
        d1 + d2
    }

    /// Count one remote I/O operation and emit its event.
    fn note_remote_io(&mut self, op: RemoteOp, bytes: u64) {
        self.stat.remote_io_calls += 1;
        self.obs
            .record(self.wall(), EventKind::RemoteIo { op, bytes });
    }

    /// Emit the batch buffer's depth after a mutation (observe-only: the
    /// sample never feeds back into accounting, so traced and untraced
    /// runs stay byte-identical).
    fn note_io_batch_depth(&mut self) {
        let depth = self.io_batch.len() as u64;
        self.obs.record(
            self.wall(),
            EventKind::QueueDepth {
                queue: QueueLane::IoBatch,
                depth,
            },
        );
    }

    /// Emit the stream window's in-flight occupancy (observe-only, one
    /// sample per serviced fault).
    fn note_stream_depth(&mut self) {
        let depth = self.stream.in_flight.len() as u64;
        self.obs.record(
            self.wall(),
            EventKind::QueueDepth {
                queue: QueueLane::StreamWindow,
                depth,
            },
        );
    }
}

impl Host for ServerBridge<'_> {
    fn page_fault(&mut self, page: u64, ctx: &mut HostCtx<'_>) -> Result<(), VmError> {
        self.fault_in(page, ctx)
    }

    fn syscall(
        &mut self,
        number: u32,
        _args: &[RtVal],
        _ctx: &mut HostCtx<'_>,
    ) -> Result<RtVal, VmError> {
        Err(VmError::MachineSpecific {
            what: format!("syscall {number} on the server"),
        })
    }

    fn inline_asm(&mut self, text: &str, _ctx: &mut HostCtx<'_>) -> Result<(), VmError> {
        Err(VmError::MachineSpecific {
            what: format!("inline asm \"{text}\" on the server"),
        })
    }

    #[allow(clippy::too_many_lines)]
    fn builtin(
        &mut self,
        b: Builtin,
        args: &[RtVal],
        ctx: &mut HostCtx<'_>,
    ) -> Result<Option<RtVal>, VmError> {
        use Builtin::*;
        match b {
            // Unified heap: shared allocator state with the mobile device.
            UMalloc => {
                ctx.clock.charge(ctx.cpi.alloc);
                let addr = self
                    .mobile_env
                    .unified_heap_mut()
                    .alloc(args[0].as_addr())?;
                Ok(Some(RtVal::I(addr as i64)))
            }
            UFree => {
                ctx.clock.charge(ctx.cpi.alloc / 2);
                self.mobile_env.unified_heap_mut().free(args[0].as_addr())?;
                Ok(None)
            }
            // Server-local heap (dies with the offload process).
            Malloc => {
                ctx.clock.charge(ctx.cpi.alloc);
                let addr = self.server_heap.alloc(args[0].as_addr())?;
                Ok(Some(RtVal::I(addr as i64)))
            }
            Free => {
                ctx.clock.charge(ctx.cpi.alloc / 2);
                self.server_heap.free(args[0].as_addr())?;
                Ok(None)
            }
            // Function-pointer translation (§3.4): mobile stub → server stub.
            FnMapToLocal => {
                ctx.clock.charge(ctx.cpi.fn_map);
                *self.fn_map_cycles += ctx.cpi.fn_map;
                self.stat.fn_maps += 1;
                self.obs.record(
                    self.wall(),
                    EventKind::FnPtrTranslate {
                        cycles: ctx.cpi.fn_map,
                    },
                );
                let addr = args[0].as_addr();
                let span = self.server_fn_count * uva_map::FN_STRIDE;
                let mapped =
                    if (uva_map::MOBILE_FN_BASE..uva_map::MOBILE_FN_BASE + span).contains(&addr) {
                        uva_map::SERVER_FN_BASE + (addr - uva_map::MOBILE_FN_BASE)
                    } else {
                        addr
                    };
                Ok(Some(RtVal::I(mapped as i64)))
            }
            // Offload-protocol plumbing.
            AcceptOffload => {
                let t = self.pending_task;
                self.pending_task = 0;
                Ok(Some(RtVal::I(t as i64)))
            }
            RecvArgI => {
                let i = args[0].as_i() as usize;
                let v = self
                    .pending_args
                    .get(i)
                    .copied()
                    .ok_or_else(|| VmError::Trap(format!("missing offload argument {i}")))?;
                Ok(Some(RtVal::I(v.as_i())))
            }
            RecvArgF => {
                let i = args[0].as_i() as usize;
                let v = self
                    .pending_args
                    .get(i)
                    .copied()
                    .ok_or_else(|| VmError::Trap(format!("missing offload argument {i}")))?;
                Ok(Some(RtVal::F(v.as_f())))
            }
            SendReturn => {
                *self.pending_return = Some(RtVal::I(args[0].as_i()));
                Ok(None)
            }
            SendReturnF => {
                *self.pending_return = Some(RtVal::F(args[0].as_f()));
                Ok(None)
            }
            // Remote I/O (§3.4).
            RPrintf => {
                let out = self.render_remote(args, ctx)?;
                ctx.clock.charge(ctx.cpi.io_char * out.len() as u64);
                let n = out.len();
                self.note_remote_io(RemoteOp::Printf, n as u64);
                if self.cfg.batch {
                    self.io_batch.extend_from_slice(&out);
                    self.note_io_batch_depth();
                } else {
                    self.send(
                        Direction::ServerToMobile,
                        MsgKind::RemoteIo,
                        n as u64,
                        n as u64,
                        CostLane::RemoteIo,
                        PowerState::Receive,
                    );
                    self.mobile_env.console_write(&out);
                }
                Ok(Some(RtVal::I(n as i64)))
            }
            RPutchar => {
                ctx.clock.charge(ctx.cpi.io_char);
                self.note_remote_io(RemoteOp::Putchar, 1);
                let c = args[0].as_i() as u8;
                if self.cfg.batch {
                    self.io_batch.push(c);
                    self.note_io_batch_depth();
                } else {
                    self.send(
                        Direction::ServerToMobile,
                        MsgKind::RemoteIo,
                        1,
                        1,
                        CostLane::RemoteIo,
                        PowerState::Receive,
                    );
                    self.mobile_env.console_write(&[c]);
                }
                Ok(Some(args[0]).map(|v| RtVal::I(v.as_i())))
            }
            RFOpen => {
                self.account_waiting(ctx.clock.cycles);
                let name = self.read_cstr_faulting(ctx, args[0].as_addr())?;
                let mode = self.read_cstr_faulting(ctx, args[1].as_addr())?;
                self.note_remote_io(RemoteOp::FOpen, name.len() as u64 + 24);
                self.remote_round_trip(name.len() as u64 + 16, 8);
                let fd = self.mobile_env.fs_mut().open(
                    &String::from_utf8_lossy(&name),
                    &String::from_utf8_lossy(&mode),
                );
                Ok(Some(RtVal::I(fd as i64)))
            }
            RFClose => {
                self.account_waiting(ctx.clock.cycles);
                self.note_remote_io(RemoteOp::FClose, 24);
                self.remote_round_trip(16, 8);
                let ok = self.mobile_env.fs_mut().close(args[0].as_i() as i32);
                Ok(Some(RtVal::I(if ok { 0 } else { -1 })))
            }
            RFRead => {
                // Remote *input*: the expensive round trip of §5.1
                // (300.twolf / 445.gobmk / 464.h264ref).
                self.account_waiting(ctx.clock.cycles);
                let (buf, size, count, fd) = (
                    args[0].as_addr(),
                    args[1].as_addr(),
                    args[2].as_addr(),
                    args[3].as_i() as i32,
                );
                let want = (size * count) as usize;
                let Some(data) = self.mobile_env.fs_mut().read(fd, want) else {
                    self.note_remote_io(RemoteOp::FRead, 32);
                    return Ok(Some(RtVal::I(0)));
                };
                self.note_remote_io(RemoteOp::FRead, 32 + data.len() as u64);
                self.remote_round_trip(32, data.len() as u64);
                self.write_faulting(ctx, buf, &data)?;
                ctx.clock.charge(ctx.cpi.io_char / 4 * data.len() as u64);
                let items = (data.len() as u64).checked_div(size).unwrap_or(0);
                Ok(Some(RtVal::I(items as i64)))
            }
            RFWrite => {
                self.account_waiting(ctx.clock.cycles);
                let (buf, size, count, fd) = (
                    args[0].as_addr(),
                    args[1].as_addr(),
                    args[2].as_addr(),
                    args[3].as_i() as i32,
                );
                let n = (size * count) as usize;
                let mut data = vec![0u8; n];
                self.read_faulting(ctx, buf, &mut data)?;
                let wire = if self.cfg.compress {
                    (lz::compress(&data).len() as u64).min(n as u64)
                } else {
                    n as u64
                };
                if self.cfg.compress {
                    self.obs.record(
                        self.wall(),
                        EventKind::Compression {
                            raw_bytes: n as u64,
                            wire_bytes: wire,
                            decompress_s: 0.0,
                        },
                    );
                }
                self.note_remote_io(RemoteOp::FWrite, n as u64);
                self.send(
                    Direction::ServerToMobile,
                    MsgKind::RemoteIo,
                    n as u64,
                    wire,
                    CostLane::RemoteIo,
                    PowerState::Receive,
                );
                let Some(written) = self.mobile_env.fs_mut().write(fd, &data) else {
                    return Ok(Some(RtVal::I(0)));
                };
                let items = (written as u64).checked_div(size).unwrap_or(0);
                Ok(Some(RtVal::I(items as i64)))
            }
            // Nested dispatchers on the server always run locally.
            IsProfitable => Ok(Some(RtVal::I(0))),
            Scanf | Getchar => Err(VmError::MachineSpecific {
                what: format!("interactive input {b} reached the server"),
            }),
            other => Err(VmError::MachineSpecific {
                what: format!("builtin {other} is not executable on the server"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Offloader;
    use offload_obs::TraceCollector;

    /// A crunch task that reads a mobile-initialized global array and
    /// writes results back — so the UVA protocol (prefetch, copy-on-
    /// demand, dirty write-back) genuinely moves data.
    const HEAVY: &str = "
        int gsize;
        int data[20000];
        double acc_out[4];
        double crunch(int n) {
            double acc = 0.0; int i; int j;
            for (j = 0; j < 100; j++)
                for (i = 0; i < n; i++)
                    acc += (double)(data[i] % 17) * 0.25;
            acc_out[0] = acc;
            return acc;
        }
        int main() {
            scanf(\"%d\", &gsize);
            int i;
            for (i = 0; i < gsize; i++) data[i] = i * 7;
            double r = crunch(gsize);
            printf(\"%.2f %.2f\\n\", r, acc_out[0]);
            return 0;
        }";

    fn compiled() -> crate::compiler::CompiledApp {
        let app = Offloader::new()
            .compile_source(HEAVY, "heavy", &WorkloadInput::from_stdin("3000\n"))
            .unwrap();
        assert!(
            app.plan.task_by_name("crunch").is_some(),
            "{:?}",
            app.plan.estimates
        );
        app
    }

    #[test]
    fn fault_window_boundaries() {
        let mut server = Memory::new(BackingPolicy::FaultOnAbsent);
        let present: BTreeSet<u64> = (10..20).collect();
        let none = |_: u64| false;
        // Window 1: the faulting page only — no fault-ahead at all.
        assert_eq!(plan_fault_window(10, 1, &present, &server, &none), vec![10]);
        // A hole in the mobile page table ends the run.
        assert_eq!(
            plan_fault_window(17, 8, &present, &server, &none),
            vec![17, 18, 19]
        );
        // A page already on the server ends the run, even though later
        // pages are absent again.
        server.install_page(12, &ZERO_PAGE);
        assert_eq!(
            plan_fault_window(10, 8, &present, &server, &none),
            vec![10, 11]
        );
        // A skipped page (in flight on the stream) ends it the same way.
        assert_eq!(
            plan_fault_window(15, 8, &present, &server, &|p| p == 16),
            vec![15]
        );
    }

    #[test]
    fn fault_window_stops_at_server_private_pages() {
        let server = Memory::new(BackingPolicy::FaultOnAbsent);
        let first_private = (uva_map::SERVER_STACK_TOP - uva_map::STACK_SIZE) / PAGE_SIZE;
        let base = first_private - 3;
        let present: BTreeSet<u64> = (base..first_private + 4).collect();
        assert_eq!(
            plan_fault_window(base, 8, &present, &server, &|_| false),
            vec![base, base + 1, base + 2]
        );
    }

    #[test]
    fn streamed_sessions_match_synchronous_results() {
        let app = compiled();
        let input = WorkloadInput::from_stdin("4000\n");
        let mut cfg = SessionConfig::fast_network();
        cfg.prefetch = false; // fault-heavy regime: streaming has work to do
        let base = app.run_offloaded(&input, &cfg).unwrap();
        // Train the history predictor on a synchronous traced run.
        let mut obs = TraceCollector::with_capacity(1 << 20);
        let _ = run_offloaded_traced(&app, &input, &cfg, &mut obs).unwrap();
        let history = std::sync::Arc::new(crate::runtime::predict::PageHistory::from_records(
            &obs.records(),
        ));
        for mode in [StreamMode::Static, StreamMode::Stride, StreamMode::History] {
            let mut scfg = cfg.clone();
            scfg.stream_mode = mode;
            scfg.page_history = Some(history.clone());
            // Traced run: in debug builds this also replays the event
            // stream and asserts bit-identical reconciliation.
            let mut sobs = TraceCollector::with_capacity(1 << 20);
            let run = run_offloaded_traced(&app, &input, &scfg, &mut sobs).unwrap();
            assert_eq!(run.console, base.console, "mode {}", mode.name());
            assert_eq!(run.exit_code, base.exit_code, "mode {}", mode.name());
            assert_eq!(
                run.dirty_pages_written_back,
                base.dirty_pages_written_back,
                "mode {}",
                mode.name()
            );
            assert_eq!(
                run.stream_hits + run.stream_wasted_pages,
                run.pages_streamed,
                "every streamed page is a hit or waste (mode {})",
                mode.name()
            );
        }
        // The history predictor must actually overlap transfers here.
        let mut hcfg = cfg.clone();
        hcfg.stream_mode = StreamMode::History;
        hcfg.page_history = Some(history);
        let hist = app.run_offloaded(&input, &hcfg).unwrap();
        assert!(hist.pages_streamed > 0, "history mode streams pages");
        assert!(hist.stream_hits > 0, "history mode lands hits");
        assert!(
            hist.total_seconds < base.total_seconds,
            "overlap must shorten the run: {} vs {}",
            hist.total_seconds,
            base.total_seconds
        );
    }

    #[test]
    fn offloaded_output_matches_local() {
        let app = compiled();
        let input = WorkloadInput::from_stdin("5000\n");
        let local = app.run_local(&input).unwrap();
        let off = app
            .run_offloaded(&input, &SessionConfig::fast_network())
            .unwrap();
        assert_eq!(local.console, off.console);
        assert!(off.offloads_performed >= 1);
    }

    #[test]
    fn offloading_heavy_compute_is_faster_and_cheaper() {
        let app = compiled();
        let input = WorkloadInput::from_stdin("5000\n");
        let local = app.run_local(&input).unwrap();
        let off = app
            .run_offloaded(&input, &SessionConfig::fast_network())
            .unwrap();
        assert!(
            off.total_seconds < local.total_seconds,
            "offload {} vs local {}",
            off.total_seconds,
            local.total_seconds
        );
        assert!(off.energy_mj < local.energy_mj, "battery must be saved");
        // The timeline shows waiting while the server computes.
        assert!(off
            .timeline
            .intervals()
            .iter()
            .any(|iv| iv.state == PowerState::Waiting));
    }

    #[test]
    fn copy_on_demand_fetches_and_writes_back() {
        let app = compiled();
        let input = WorkloadInput::from_stdin("4000\n");
        let mut cfg = SessionConfig::fast_network();
        cfg.prefetch = false; // force demand faults
        let off = app.run_offloaded(&input, &cfg).unwrap();
        assert!(
            off.demand_page_fetches > 0,
            "without prefetch, pages fault in"
        );
        assert!(off.dirty_pages_written_back > 0, "results go home");
        assert_eq!(off.prefetched_pages, 0);
    }

    #[test]
    fn prefetch_reduces_demand_fetches() {
        let app = compiled();
        let input = WorkloadInput::from_stdin("4000\n");
        let with = app
            .run_offloaded(&input, &SessionConfig::fast_network())
            .unwrap();
        let mut cfg = SessionConfig::fast_network();
        cfg.prefetch = false;
        let without = app.run_offloaded(&input, &cfg).unwrap();
        assert!(with.prefetched_pages > 0);
        assert!(with.demand_page_fetches < without.demand_page_fetches);
    }

    #[test]
    fn dynamic_estimator_refuses_on_hopeless_links() {
        let app = compiled();
        let input = WorkloadInput::from_stdin("4000\n");
        let mut cfg = SessionConfig::with_link(offload_net::Link::custom("2g", 40_000, 0.5));
        cfg.dynamic_estimation = true;
        let off = app.run_offloaded(&input, &cfg).unwrap();
        assert_eq!(off.offloads_performed, 0, "a 40 kbps link must be refused");
        assert!(off.offloads_refused >= 1);
        // Refused offloading still computes the right answer locally.
        let local = app.run_local(&input).unwrap();
        assert_eq!(off.console, local.console);
    }

    #[test]
    fn remote_printf_reaches_mobile_console_in_order() {
        let src = "
            int n;
            double noisy(int k) {
                double acc = 0.0; int i;
                for (i = 0; i < k * 2000; i++) acc += (double)(i % 11);
                printf(\"server says %d\\n\", k);
                return acc;
            }
            int main() {
                scanf(\"%d\", &n);
                printf(\"before\\n\");
                double r = noisy(n);
                printf(\"after %.0f\\n\", r);
                return 0;
            }";
        let app = Offloader::new()
            .compile_source(src, "noisy", &WorkloadInput::from_stdin("300\n"))
            .unwrap();
        assert!(app.plan.task_by_name("noisy").is_some());
        let input = WorkloadInput::from_stdin("400\n");
        let local = app.run_local(&input).unwrap();
        let off = app
            .run_offloaded(&input, &SessionConfig::fast_network())
            .unwrap();
        assert_eq!(local.console, off.console);
        assert!(off.remote_io_calls >= 1);
    }

    #[test]
    fn shared_heap_objects_cross_the_uva() {
        // The mobile allocates and fills a buffer; the server reads it and
        // writes results into another heap object; the mobile prints them.
        let src = "
            int n;
            long process(int *data, long *out, int len) {
                long sum = 0; int i;
                for (i = 0; i < len; i++) { sum += data[i]; out[i] = (long)data[i] * 2; }
                int pad; for (pad = 0; pad < 500000; pad++) sum += pad % 3;
                return sum;
            }
            int main() {
                scanf(\"%d\", &n);
                int *data = (int*)malloc(sizeof(int) * n);
                long *out = (long*)malloc(sizeof(long) * n);
                int i;
                for (i = 0; i < n; i++) data[i] = i * i;
                long s = process(data, out, n);
                printf(\"%d %d %d\\n\", (int)(s % 100000), (int)out[3], (int)out[n-1]);
                return 0;
            }";
        let app = Offloader::new()
            .compile_source(src, "shared", &WorkloadInput::from_stdin("800\n"))
            .unwrap();
        assert!(
            app.plan.task_by_name("process").is_some(),
            "{:?}",
            app.plan.estimates
        );
        let input = WorkloadInput::from_stdin("1200\n");
        let local = app.run_local(&input).unwrap();
        let off = app
            .run_offloaded(&input, &SessionConfig::fast_network())
            .unwrap();
        assert_eq!(local.console, off.console, "heap results must write back");
        assert!(off.dirty_pages_written_back > 0);
    }

    #[test]
    fn slow_network_is_slower_than_fast() {
        let app = compiled();
        let input = WorkloadInput::from_stdin("5000\n");
        let mut slow_cfg = SessionConfig::slow_network();
        slow_cfg.dynamic_estimation = false; // force the offload through
        let slow = app.run_offloaded(&input, &slow_cfg).unwrap();
        let fast = app
            .run_offloaded(&input, &SessionConfig::fast_network())
            .unwrap();
        assert!(slow.total_seconds > fast.total_seconds);
        assert!(slow.breakdown.communication_s > fast.breakdown.communication_s);
    }

    #[test]
    fn pooled_sessions_reuse_page_frames_and_stay_byte_identical() {
        let app = compiled();
        let input = WorkloadInput::from_stdin("4000\n");
        let cfg = SessionConfig::fast_network();
        let baseline = app.run_offloaded(&input, &cfg).unwrap();

        let mut pool = SessionPool::new();
        let first =
            run_offloaded_pooled(&app, &input, &cfg, &mut NoopCollector, &mut pool).unwrap();
        let after_first = pool.frame_allocs();
        assert!(after_first > 0, "the first session populates the arenas");

        // Steady state: identical sessions through one pool recycle every
        // frame — the heap is never asked for another page.
        for _ in 0..3 {
            let again =
                run_offloaded_pooled(&app, &input, &cfg, &mut NoopCollector, &mut pool).unwrap();
            assert_eq!(again.console, first.console);
            assert_eq!(again.total_seconds.to_bits(), first.total_seconds.to_bits());
            assert_eq!(again.breakdown, first.breakdown);
        }
        assert_eq!(
            pool.frame_allocs(),
            after_first,
            "steady-state sessions must not allocate new page frames"
        );

        // Pooling is a pure resource optimization: same report as the
        // unpooled path.
        assert_eq!(baseline.console, first.console);
        assert_eq!(
            baseline.total_seconds.to_bits(),
            first.total_seconds.to_bits()
        );
        assert_eq!(baseline.breakdown, first.breakdown);
    }

    #[test]
    fn pool_survives_differently_shaped_sessions() {
        // Alternating between two different apps through one pool must
        // still be byte-identical to fresh-arena runs (the recycle path
        // fully resets layout, policy and baselines).
        let heavy = compiled();
        let app2 = Offloader::new()
            .compile_source(
                "
                int n;
                double work(int k) {
                    double acc = 0.0; int i;
                    for (i = 0; i < k * 1000; i++) acc += (double)(i % 7);
                    return acc;
                }
                int main() {
                    scanf(\"%d\", &n);
                    printf(\"%.1f\\n\", work(n));
                    return 0;
                }",
                "worker2",
                &WorkloadInput::from_stdin("400\n"),
            )
            .unwrap();
        let cfg = SessionConfig::fast_network();
        let in1 = WorkloadInput::from_stdin("3000\n");
        let in2 = WorkloadInput::from_stdin("500\n");
        let want1 = heavy.run_offloaded(&in1, &cfg).unwrap();
        let want2 = app2.run_offloaded(&in2, &cfg).unwrap();

        let mut pool = SessionPool::new();
        for _ in 0..2 {
            let got1 =
                run_offloaded_pooled(&heavy, &in1, &cfg, &mut NoopCollector, &mut pool).unwrap();
            let got2 =
                run_offloaded_pooled(&app2, &in2, &cfg, &mut NoopCollector, &mut pool).unwrap();
            assert_eq!(got1.console, want1.console);
            assert_eq!(got1.total_seconds.to_bits(), want1.total_seconds.to_bits());
            assert_eq!(got2.console, want2.console);
            assert_eq!(got2.total_seconds.to_bits(), want2.total_seconds.to_bits());
        }
    }

    #[test]
    fn traced_run_equals_untraced_run() {
        // Instrumentation must be a pure observer: a traced run and the
        // default no-op run produce identical reports.
        let app = compiled();
        let input = WorkloadInput::from_stdin("4000\n");
        let plain = app
            .run_offloaded(&input, &SessionConfig::fast_network())
            .unwrap();
        let mut obs = TraceCollector::new();
        let traced = crate::runtime::run_offloaded_traced(
            &app,
            &input,
            &SessionConfig::fast_network(),
            &mut obs,
        )
        .unwrap();
        assert_eq!(plain.console, traced.console);
        assert_eq!(
            plain.total_seconds.to_bits(),
            traced.total_seconds.to_bits()
        );
        assert_eq!(plain.breakdown, traced.breakdown);
        assert!(!obs.is_empty(), "tracing recorded events");
        assert!(
            !traced.metrics.is_empty(),
            "metrics snapshot rides on the report"
        );
        assert!(plain.metrics.is_empty(), "noop path keeps the report lean");
    }
}
