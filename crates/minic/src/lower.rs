//! Semantic analysis and lowering of the AST to IR.
//!
//! Lowering follows the clang -O0 style the offload passes expect: every
//! local lives in an [`offload_ir::Inst::Alloca`] slot hoisted
//! to the entry block, expressions produce virtual registers, and there is
//! no `phi`. `sizeof` and struct copies are resolved against the **mobile
//! data layout** ([`TargetAbi::MobileArm32`]) — the unified standard layout
//! of §3.2, which both partitions execute under.
//!
//! Functions returning aggregates use a hidden struct-return pointer
//! parameter (sret), so `Move getAITurn()` from the paper's Fig. 3 lowers
//! cleanly. Aggregates are passed by pointer, never by value.

use std::collections::HashMap;

use offload_ir::builder::FunctionBuilder;
use offload_ir::module::GlobalInit;
use offload_ir::types::FuncSig;
use offload_ir::{
    BinOp, Builtin, CastKind, CmpOp, ConstValue, DataLayout, FuncId, GlobalId, Inst, Module,
    StructDef, StructId, TargetAbi, Type, UnOp, ValueId,
};

use crate::ast::*;
use crate::error::CompileError;

/// Lower a parsed [`Unit`] into an IR [`Module`].
///
/// # Errors
///
/// Returns a [`CompileError`] on semantic errors (unknown names, type
/// mismatches, invalid initializers).
pub fn lower(unit: &Unit, module_name: &str) -> Result<Module, CompileError> {
    let mut module = Module::new(module_name);
    let mut data = CtxData {
        layout: TargetAbi::MobileArm32.data_layout(),
        structs: HashMap::new(),
        struct_fields: HashMap::new(),
        typedefs: HashMap::new(),
        globals: HashMap::new(),
        functions: HashMap::new(),
        strings: HashMap::new(),
    };
    declare_all(&mut module, &mut data, unit)?;
    for decl in &unit.decls {
        if let Decl::Function {
            name,
            params,
            body: Some(body),
            line,
            ..
        } = decl
        {
            let info = data
                .functions
                .get(name)
                .cloned()
                .expect("declared in pass 1");
            if !module.function(info.id).is_declaration() {
                return Err(CompileError::sema(
                    *line,
                    format!("function {name} redefined"),
                ));
            }
            let param_names: Vec<String> = params.iter().map(|(_, n)| n.clone()).collect();
            FnLower::run(&mut module, &mut data, info, param_names, body)?;
        }
    }
    if let Some(main) = module.function_by_name("main") {
        module.entry = Some(main);
    }
    Ok(module)
}

/// Signature info for a function, including the sret rewrite.
#[derive(Debug, Clone)]
struct FnInfo {
    id: FuncId,
    /// Source-level return type (may be an aggregate).
    src_ret: Type,
    /// Source-level parameter types.
    src_params: Vec<Type>,
    /// `true` if the aggregate return was rewritten to a hidden pointer.
    sret: bool,
}

/// Name tables shared across the two passes (kept separate from the
/// [`Module`] so a [`FunctionBuilder`] can borrow the module while these
/// stay accessible).
struct CtxData {
    layout: DataLayout,
    structs: HashMap<String, StructId>,
    struct_fields: HashMap<StructId, Vec<String>>,
    typedefs: HashMap<String, Type>,
    globals: HashMap<String, (GlobalId, Type)>,
    functions: HashMap<String, FnInfo>,
    strings: HashMap<String, GlobalId>,
}

impl CtxData {
    fn resolve_type(&self, te: &TypeExpr, line: u32) -> Result<Type, CompileError> {
        Ok(match te {
            TypeExpr::Void => Type::Void,
            TypeExpr::Char => Type::I8,
            TypeExpr::Short => Type::I16,
            TypeExpr::Int => Type::I32,
            TypeExpr::Long => Type::I64,
            TypeExpr::Double => Type::F64,
            TypeExpr::Struct(name) => Type::Struct(
                *self
                    .structs
                    .get(name)
                    .ok_or_else(|| CompileError::sema(line, format!("unknown struct {name}")))?,
            ),
            TypeExpr::Named(name) => self
                .typedefs
                .get(name)
                .cloned()
                .ok_or_else(|| CompileError::sema(line, format!("unknown type {name}")))?,
            TypeExpr::Ptr(inner) => self.resolve_type(inner, line)?.ptr_to(),
            TypeExpr::Array(inner, len) => self.resolve_type(inner, line)?.array_of(*len),
            TypeExpr::FnPtr { ret, params } => {
                let sig = FuncSig {
                    ret: self.resolve_type(ret, line)?,
                    params: params
                        .iter()
                        .map(|p| self.resolve_type(p, line))
                        .collect::<Result<_, _>>()?,
                };
                Type::Func(Box::new(sig)).ptr_to()
            }
        })
    }

    fn field_index(&self, sid: StructId, field: &str) -> Option<usize> {
        self.struct_fields
            .get(&sid)?
            .iter()
            .position(|f| f == field)
    }
}

fn intern_string(module: &mut Module, data: &mut CtxData, s: &str) -> GlobalId {
    if let Some(id) = data.strings.get(s) {
        return *id;
    }
    let mut bytes = s.as_bytes().to_vec();
    bytes.push(0);
    let id = module.define_global(
        format!(".str{}", data.strings.len()),
        Type::I8.array_of(bytes.len()),
        GlobalInit::Bytes(bytes),
    );
    data.strings.insert(s.to_string(), id);
    id
}

// ----- pass 1: declarations ------------------------------------------------

fn declare_all(module: &mut Module, data: &mut CtxData, unit: &Unit) -> Result<(), CompileError> {
    // Struct names first (bodies empty), so self-referential structs like
    // `struct Node { ...; struct Node *next; }` resolve.
    for decl in &unit.decls {
        if let Decl::Struct { name, fields, line } = decl {
            let id = module.define_struct(StructDef {
                name: name.clone(),
                fields: Vec::new(),
            });
            if data.structs.insert(name.clone(), id).is_some() {
                return Err(CompileError::sema(
                    *line,
                    format!("struct {name} redefined"),
                ));
            }
            data.struct_fields
                .insert(id, fields.iter().map(|(_, n)| n.clone()).collect());
        }
    }
    for decl in &unit.decls {
        match decl {
            Decl::Struct { name, fields, line } => {
                let tys = fields
                    .iter()
                    .map(|(t, _)| data.resolve_type(t, *line))
                    .collect::<Result<Vec<_>, _>>()?;
                let id = data.structs[name.as_str()];
                module.set_struct_fields(id, tys);
            }
            Decl::Typedef { name, ty, line } => {
                let t = data.resolve_type(ty, *line)?;
                data.typedefs.insert(name.clone(), t);
            }
            _ => {}
        }
    }
    // Function signatures before globals, so function-pointer tables in
    // global initializers resolve; then globals in order.
    for decl in &unit.decls {
        if let Decl::Function {
            ret,
            name,
            params,
            line,
            ..
        } = decl
        {
            if data.functions.contains_key(name) {
                continue;
            }
            let src_ret = data.resolve_type(ret, *line)?;
            let src_params = params
                .iter()
                .map(|(t, _)| data.resolve_type(t, *line))
                .collect::<Result<Vec<_>, _>>()?;
            let sret = !src_ret.is_register() && src_ret != Type::Void;
            let mut ir_params = Vec::new();
            if sret {
                ir_params.push(src_ret.clone().ptr_to());
            }
            ir_params.extend(src_params.iter().cloned());
            let ir_ret = if sret { Type::Void } else { src_ret.clone() };
            let id = module.declare_function(name.clone(), ir_params, ir_ret);
            data.functions.insert(
                name.clone(),
                FnInfo {
                    id,
                    src_ret,
                    src_params,
                    sret,
                },
            );
        }
    }
    for decl in &unit.decls {
        if let Decl::Global {
            ty,
            name,
            init,
            line,
        } = decl
        {
            let t = data.resolve_type(ty, *line)?;
            let ginit = match init {
                None => GlobalInit::Zeroed,
                Some(e) => const_init(module, data, &t, e)?,
            };
            let id = module.define_global(name.clone(), t.clone(), ginit);
            if data.globals.insert(name.clone(), (id, t)).is_some() {
                return Err(CompileError::sema(
                    *line,
                    format!("global {name} redefined"),
                ));
            }
        }
    }
    Ok(())
}

fn const_init(
    module: &mut Module,
    data: &mut CtxData,
    ty: &Type,
    e: &Expr,
) -> Result<GlobalInit, CompileError> {
    let mut out = Vec::new();
    flatten_init(module, data, ty, e, &mut out)?;
    Ok(GlobalInit::Scalars(out))
}

fn flatten_init(
    module: &mut Module,
    data: &mut CtxData,
    ty: &Type,
    e: &Expr,
    out: &mut Vec<ConstValue>,
) -> Result<(), CompileError> {
    match ty {
        Type::Array(elem, len) => {
            if let (ExprKind::Str(s), Type::I8) = (&e.kind, &**elem) {
                let bytes = s.as_bytes();
                if bytes.len() >= *len {
                    return Err(CompileError::sema(e.line, "string longer than array"));
                }
                for i in 0..*len {
                    out.push(ConstValue::I8(bytes.get(i).copied().unwrap_or(0) as i8));
                }
                return Ok(());
            }
            let ExprKind::InitList(items) = &e.kind else {
                return Err(CompileError::sema(
                    e.line,
                    "array initializer must be a list",
                ));
            };
            if items.len() > *len {
                return Err(CompileError::sema(e.line, "too many initializers"));
            }
            for item in items {
                flatten_init(module, data, elem, item, out)?;
            }
            for _ in items.len()..*len {
                zero_fill(module, elem, out);
            }
            Ok(())
        }
        Type::Struct(id) => {
            let ExprKind::InitList(items) = &e.kind else {
                return Err(CompileError::sema(
                    e.line,
                    "struct initializer must be a list",
                ));
            };
            let fields = module.struct_def(*id).fields.clone();
            if items.len() > fields.len() {
                return Err(CompileError::sema(e.line, "too many initializers"));
            }
            for (field, item) in fields.iter().zip(items) {
                flatten_init(module, data, field, item, out)?;
            }
            for field in &fields[items.len()..] {
                zero_fill(module, field, out);
            }
            Ok(())
        }
        _ => {
            let cv = const_scalar(module, data, ty, e)?;
            out.push(cv);
            Ok(())
        }
    }
}

fn zero_fill(module: &Module, ty: &Type, out: &mut Vec<ConstValue>) {
    match ty {
        Type::Array(elem, len) => {
            for _ in 0..*len {
                zero_fill(module, elem, out);
            }
        }
        Type::Struct(id) => {
            let fields = module.struct_def(*id).fields.clone();
            for f in &fields {
                zero_fill(module, f, out);
            }
        }
        _ => out.push(zero_const(ty)),
    }
}

fn const_scalar(
    module: &mut Module,
    data: &mut CtxData,
    ty: &Type,
    e: &Expr,
) -> Result<ConstValue, CompileError> {
    let cv = match (&e.kind, ty) {
        (ExprKind::Int(v), Type::I8) => ConstValue::I8(*v as i8),
        (ExprKind::Int(v), Type::I16) => ConstValue::I16(*v as i16),
        (ExprKind::Int(v), Type::I32) => ConstValue::I32(*v as i32),
        (ExprKind::Int(v), Type::I64) => ConstValue::I64(*v),
        (ExprKind::Int(v), Type::F64) => ConstValue::F64(*v as f64),
        (ExprKind::Int(0), Type::Ptr(p)) => ConstValue::Null((**p).clone()),
        (ExprKind::Float(v), Type::F64) => ConstValue::F64(*v),
        (ExprKind::Unary(UnaryOp::Neg, inner), _) => match const_scalar(module, data, ty, inner)? {
            ConstValue::I8(v) => ConstValue::I8(-v),
            ConstValue::I16(v) => ConstValue::I16(-v),
            ConstValue::I32(v) => ConstValue::I32(-v),
            ConstValue::I64(v) => ConstValue::I64(-v),
            ConstValue::F64(v) => ConstValue::F64(-v),
            _ => return Err(CompileError::sema(e.line, "cannot negate initializer")),
        },
        (ExprKind::Str(s), Type::Ptr(_)) => {
            let g = intern_string(module, data, s);
            ConstValue::GlobalAddr(g)
        }
        (ExprKind::Ident(name), Type::Ptr(_)) => {
            if let Some(info) = data.functions.get(name) {
                ConstValue::FuncAddr(info.id)
            } else {
                return Err(CompileError::sema(
                    e.line,
                    format!("initializer identifier {name} is not a function"),
                ));
            }
        }
        (ExprKind::Unary(UnaryOp::AddrOf, inner), Type::Ptr(_)) => {
            if let ExprKind::Ident(name) = &inner.kind {
                if let Some((gid, _)) = data.globals.get(name) {
                    ConstValue::GlobalAddr(*gid)
                } else {
                    return Err(CompileError::sema(e.line, format!("unknown global {name}")));
                }
            } else {
                return Err(CompileError::sema(e.line, "unsupported constant address"));
            }
        }
        _ => {
            return Err(CompileError::sema(
                e.line,
                format!("unsupported constant initializer for type {ty}"),
            ))
        }
    };
    Ok(cv)
}

fn zero_const(ty: &Type) -> ConstValue {
    match ty {
        Type::I8 => ConstValue::I8(0),
        Type::I16 => ConstValue::I16(0),
        Type::I64 => ConstValue::I64(0),
        Type::F64 => ConstValue::F64(0.0),
        Type::Ptr(p) => ConstValue::Null((**p).clone()),
        _ => ConstValue::I32(0),
    }
}

// ----- pass 2: function bodies ----------------------------------------------

/// A value paired with its source-level type.
#[derive(Debug, Clone)]
struct RV {
    v: ValueId,
    ty: Type,
}

/// An lvalue: an address register plus the type stored there.
#[derive(Debug, Clone)]
struct LV {
    addr: ValueId,
    ty: Type,
}

struct FnLower<'m> {
    b: FunctionBuilder<'m>,
    data: &'m mut CtxData,
    info: FnInfo,
    scopes: Vec<HashMap<String, LV>>,
    /// `(break target, continue target)` stack; `switch` pushes a break
    /// target with the enclosing loop's continue (or `None`).
    loop_stack: Vec<(offload_ir::BlockId, Option<offload_ir::BlockId>)>,
    /// Allocas to hoist into the entry block.
    pending_allocas: Vec<(ValueId, Type, u64)>,
}

impl<'m> FnLower<'m> {
    fn run(
        module: &'m mut Module,
        data: &'m mut CtxData,
        info: FnInfo,
        param_names: Vec<String>,
        body: &Stmt,
    ) -> Result<(), CompileError> {
        let func_id = info.id;
        let b = FunctionBuilder::new(module, func_id);
        let mut this = FnLower {
            b,
            data,
            info,
            scopes: vec![HashMap::new()],
            loop_stack: Vec::new(),
            pending_allocas: Vec::new(),
        };

        // Spill parameters into allocas so `&param` works.
        let offset = usize::from(this.info.sret);
        for (i, name) in param_names.iter().enumerate() {
            let ty = this.info.src_params[i].clone();
            let slot = this.alloca(ty.clone(), 1);
            let pv = this.b.param(i + offset);
            this.b.store(ty.clone(), slot, pv);
            this.scopes[0].insert(name.clone(), LV { addr: slot, ty });
        }

        this.stmt(body)?;

        // Fall-off-the-end: synthesize a default return (C allows it).
        if !this.b.is_terminated() {
            match this.info.src_ret.clone() {
                Type::Void => this.b.ret(None),
                ty if !ty.is_register() => this.b.ret(None), // sret
                ty => {
                    let z = this.b.const_value(zero_const(&ty));
                    this.b.ret(Some(z));
                }
            }
        }
        let FnLower {
            b,
            pending_allocas: pending,
            ..
        } = this;
        b.finish();

        // Hoist allocas into the entry block front.
        let allocas: Vec<Inst> = pending
            .into_iter()
            .map(|(dst, ty, count)| Inst::Alloca { dst, ty, count })
            .collect();
        let entry = &mut module.function_mut(func_id).blocks[0].insts;
        entry.splice(0..0, allocas);
        Ok(())
    }

    fn alloca(&mut self, ty: Type, count: u64) -> ValueId {
        let slot = self.b.new_value(ty.clone().ptr_to());
        self.pending_allocas.push((slot, ty, count));
        slot
    }

    fn lookup(&self, name: &str) -> Option<LV> {
        for scope in self.scopes.iter().rev() {
            if let Some(lv) = scope.get(name) {
                return Some(lv.clone());
            }
        }
        None
    }

    // ----- statements -----------------------------------------------------

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        if self.b.is_terminated() {
            return Ok(()); // dead code after return/break
        }
        match &s.kind {
            StmtKind::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for st in stmts {
                    self.stmt(st)?;
                }
                self.scopes.pop();
            }
            StmtKind::Decl { ty, name, init } => {
                let ty = self.data.resolve_type(ty, s.line)?;
                if ty == Type::Void {
                    return Err(CompileError::sema(s.line, "cannot declare void variable"));
                }
                let slot = self.alloca(ty.clone(), 1);
                self.scopes.last_mut().expect("scope").insert(
                    name.clone(),
                    LV {
                        addr: slot,
                        ty: ty.clone(),
                    },
                );
                if let Some(init) = init {
                    self.init_local(&LV { addr: slot, ty }, init)?;
                }
            }
            StmtKind::Expr(e) => {
                self.expr(e)?;
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.cond(cond)?;
                let bb_then = self.b.new_block();
                let bb_join = self.b.new_block();
                let bb_else = if else_branch.is_some() {
                    self.b.new_block()
                } else {
                    bb_join
                };
                self.b.cond_br(c, bb_then, bb_else);
                self.b.switch_to(bb_then);
                self.stmt(then_branch)?;
                if !self.b.is_terminated() {
                    self.b.br(bb_join);
                }
                if let Some(else_branch) = else_branch {
                    self.b.switch_to(bb_else);
                    self.stmt(else_branch)?;
                    if !self.b.is_terminated() {
                        self.b.br(bb_join);
                    }
                }
                self.b.switch_to(bb_join);
            }
            StmtKind::While { cond, body } => {
                let bb_header = self.b.new_block();
                let bb_body = self.b.new_block();
                let bb_exit = self.b.new_block();
                self.b.br(bb_header);
                self.b.switch_to(bb_header);
                let c = self.cond(cond)?;
                self.b.cond_br(c, bb_body, bb_exit);
                self.b.switch_to(bb_body);
                self.loop_stack.push((bb_exit, Some(bb_header)));
                self.stmt(body)?;
                self.loop_stack.pop();
                if !self.b.is_terminated() {
                    self.b.br(bb_header);
                }
                self.b.switch_to(bb_exit);
            }
            StmtKind::DoWhile { body, cond } => {
                let bb_body = self.b.new_block();
                let bb_latch = self.b.new_block();
                let bb_exit = self.b.new_block();
                self.b.br(bb_body);
                self.b.switch_to(bb_body);
                self.loop_stack.push((bb_exit, Some(bb_latch)));
                self.stmt(body)?;
                self.loop_stack.pop();
                if !self.b.is_terminated() {
                    self.b.br(bb_latch);
                }
                self.b.switch_to(bb_latch);
                let c = self.cond(cond)?;
                self.b.cond_br(c, bb_body, bb_exit);
                self.b.switch_to(bb_exit);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                let bb_header = self.b.new_block();
                let bb_body = self.b.new_block();
                let bb_step = self.b.new_block();
                let bb_exit = self.b.new_block();
                self.b.br(bb_header);
                self.b.switch_to(bb_header);
                match cond {
                    Some(c) => {
                        let cv = self.cond(c)?;
                        self.b.cond_br(cv, bb_body, bb_exit);
                    }
                    None => self.b.br(bb_body),
                }
                self.b.switch_to(bb_body);
                self.loop_stack.push((bb_exit, Some(bb_step)));
                self.stmt(body)?;
                self.loop_stack.pop();
                if !self.b.is_terminated() {
                    self.b.br(bb_step);
                }
                self.b.switch_to(bb_step);
                if let Some(step) = step {
                    self.expr(step)?;
                }
                self.b.br(bb_header);
                self.b.switch_to(bb_exit);
                self.scopes.pop();
            }
            StmtKind::Return(value) => match (&self.info.src_ret.clone(), value) {
                (Type::Void, None) => self.b.ret(None),
                (Type::Void, Some(_)) => {
                    return Err(CompileError::sema(s.line, "void function returns a value"))
                }
                (ret, Some(e)) if !ret.is_register() => {
                    // sret: copy the aggregate into the hidden out-pointer.
                    let src = self.aggregate_addr(e, ret)?;
                    let dst = self.b.param(0);
                    self.copy_aggregate(dst, src, ret);
                    self.b.ret(None);
                }
                (ret, Some(e)) => {
                    let rv = self.expr(e)?;
                    let rv = self.convert_at(rv, ret, s.line)?;
                    self.b.ret(Some(rv.v));
                }
                (_, None) => {
                    return Err(CompileError::sema(
                        s.line,
                        "non-void function returns nothing",
                    ))
                }
            },
            StmtKind::Break => {
                let Some((bb_exit, _)) = self.loop_stack.last().copied() else {
                    return Err(CompileError::sema(s.line, "break outside loop"));
                };
                self.b.br(bb_exit);
            }
            StmtKind::Continue => {
                let Some((_, Some(bb_cont))) = self.loop_stack.last().copied() else {
                    return Err(CompileError::sema(s.line, "continue outside loop"));
                };
                self.b.br(bb_cont);
            }
            StmtKind::Asm(text) => {
                self.b.push(Inst::InlineAsm { text: text.clone() });
            }
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let rv = self.expr(scrutinee)?;
                let rv = self.convert_at(rv, &Type::I64, s.line)?;
                let bb_exit = self.b.new_block();
                let case_blocks: Vec<offload_ir::BlockId> =
                    cases.iter().map(|_| self.b.new_block()).collect();
                let bb_default = if default.is_some() {
                    self.b.new_block()
                } else {
                    bb_exit
                };

                // Dispatch chain: compare against each label in order.
                for (k, (value, _)) in cases.iter().enumerate() {
                    let c = self.b.const_i64(*value);
                    let hit = self.b.cmp(CmpOp::Eq, Type::I64, rv.v, c);
                    let bb_next = if k + 1 < cases.len() {
                        self.b.new_block()
                    } else {
                        bb_default
                    };
                    self.b.cond_br(hit, case_blocks[k], bb_next);
                    if k + 1 < cases.len() {
                        self.b.switch_to(bb_next);
                    }
                }
                if cases.is_empty() {
                    self.b.br(bb_default);
                }

                // Bodies, with C fallthrough: an unterminated case falls
                // into the next case body (then default, then exit).
                let inherited = self.loop_stack.last().and_then(|(_, c)| *c);
                self.loop_stack.push((bb_exit, inherited));
                for (k, (_, stmts)) in cases.iter().enumerate() {
                    self.b.switch_to(case_blocks[k]);
                    self.scopes.push(HashMap::new());
                    for st in stmts {
                        self.stmt(st)?;
                    }
                    self.scopes.pop();
                    if !self.b.is_terminated() {
                        let next = case_blocks.get(k + 1).copied().unwrap_or(bb_default);
                        self.b.br(next);
                    }
                }
                if let Some(stmts) = default {
                    self.b.switch_to(bb_default);
                    self.scopes.push(HashMap::new());
                    for st in stmts {
                        self.stmt(st)?;
                    }
                    self.scopes.pop();
                    if !self.b.is_terminated() {
                        self.b.br(bb_exit);
                    }
                }
                self.loop_stack.pop();
                self.b.switch_to(bb_exit);
            }
        }
        Ok(())
    }

    fn init_local(&mut self, lv: &LV, init: &Expr) -> Result<(), CompileError> {
        match (&lv.ty.clone(), &init.kind) {
            (Type::Array(elem, len), ExprKind::InitList(items)) => {
                if items.len() > *len {
                    return Err(CompileError::sema(init.line, "too many initializers"));
                }
                for (i, item) in items.iter().enumerate() {
                    let idx = self.b.const_i32(i as i32);
                    let slot = self.b.index_addr(lv.addr, (**elem).clone(), idx);
                    self.init_local(
                        &LV {
                            addr: slot,
                            ty: (**elem).clone(),
                        },
                        item,
                    )?;
                }
                Ok(())
            }
            (Type::Array(elem, len), ExprKind::Str(s)) if **elem == Type::I8 => {
                let bytes = s.as_bytes().to_vec();
                if bytes.len() >= *len {
                    return Err(CompileError::sema(init.line, "string longer than array"));
                }
                let g = intern_string(self.b.module_mut(), self.data, s);
                let src = self.b.const_value(ConstValue::GlobalAddr(g));
                let n = self.b.const_i64(bytes.len() as i64 + 1);
                self.b
                    .call_builtin(Builtin::Memcpy, Type::I8.ptr_to(), vec![lv.addr, src, n]);
                Ok(())
            }
            (Type::Struct(sid), ExprKind::InitList(items)) => {
                let fields = self.b.module().struct_def(*sid).fields.clone();
                if items.len() > fields.len() {
                    return Err(CompileError::sema(init.line, "too many initializers"));
                }
                let sid = *sid;
                for (i, item) in items.iter().enumerate() {
                    let slot = self.b.field_addr(lv.addr, sid, i as u32);
                    self.init_local(
                        &LV {
                            addr: slot,
                            ty: fields[i].clone(),
                        },
                        item,
                    )?;
                }
                Ok(())
            }
            (ty, _) if !ty.is_register() => {
                let src = self.aggregate_addr(init, ty)?;
                self.copy_aggregate(lv.addr, src, ty);
                Ok(())
            }
            (ty, _) => {
                let rv = self.expr(init)?;
                let rv = self.convert_at(rv, ty, init.line)?;
                self.b.store(ty.clone(), lv.addr, rv.v);
                Ok(())
            }
        }
    }

    fn copy_aggregate(&mut self, dst: ValueId, src: ValueId, ty: &Type) {
        let size = self.data.layout.size_of(ty, self.b.module());
        let n = self.b.const_i64(size as i64);
        self.b
            .call_builtin(Builtin::Memcpy, Type::I8.ptr_to(), vec![dst, src, n]);
    }

    // ----- expressions ------------------------------------------------------

    fn cond(&mut self, e: &Expr) -> Result<ValueId, CompileError> {
        let rv = self.expr(e)?;
        Ok(self.truthiness(rv))
    }

    fn truthiness(&mut self, rv: RV) -> ValueId {
        match &rv.ty {
            Type::F64 => {
                let z = self.b.const_f64(0.0);
                self.b.cmp(CmpOp::Ne, Type::F64, rv.v, z)
            }
            Type::Ptr(_) => {
                let z = self.b.const_i64(0);
                let zi = self.b.cast(CastKind::IntToPtr, rv.ty.clone(), z);
                self.b.cmp(CmpOp::Ne, rv.ty.clone(), rv.v, zi)
            }
            Type::I32 => rv.v,
            ty => {
                let z = self.b.const_value(zero_const(ty));
                self.b.cmp(CmpOp::Ne, ty.clone(), rv.v, z)
            }
        }
    }

    fn convert_at(&mut self, rv: RV, target: &Type, line: u32) -> Result<RV, CompileError> {
        self.convert(rv, target).map_err(|mut e| {
            if e.line == 0 {
                e.line = line;
            }
            e
        })
    }

    /// Convert an rvalue to `target` using C's implicit conversion rules.
    fn convert(&mut self, rv: RV, target: &Type) -> Result<RV, CompileError> {
        if &rv.ty == target {
            return Ok(rv);
        }
        let v = match (&rv.ty.clone(), target) {
            (a, t) if a.is_int() && t.is_int() => {
                let (ab, tb) = (a.int_bits().unwrap(), t.int_bits().unwrap());
                if ab < tb {
                    self.b.cast(CastKind::Sext, target.clone(), rv.v)
                } else if ab > tb {
                    self.b.cast(CastKind::Trunc, target.clone(), rv.v)
                } else {
                    rv.v
                }
            }
            (a, Type::F64) if a.is_int() => {
                let wide = self.convert(rv, &Type::I64)?;
                self.b.cast(CastKind::SiToF, Type::F64, wide.v)
            }
            (Type::F64, t) if t.is_int() => self.b.cast(CastKind::FToSi, target.clone(), rv.v),
            (Type::Ptr(_), Type::Ptr(_)) => self.b.cast(CastKind::PtrCast, target.clone(), rv.v),
            (a, Type::Ptr(_)) if a.is_int() => {
                let wide = self.convert(rv, &Type::I64)?;
                self.b.cast(CastKind::IntToPtr, target.clone(), wide.v)
            }
            (Type::Ptr(_), t) if t.is_int() => {
                let i = self.b.cast(CastKind::PtrToInt, Type::I64, rv.v);
                self.convert(
                    RV {
                        v: i,
                        ty: Type::I64,
                    },
                    target,
                )?
                .v
            }
            _ => {
                return Err(CompileError::sema(
                    0,
                    format!("cannot convert {} to {}", rv.ty, target),
                ))
            }
        };
        Ok(RV {
            v,
            ty: target.clone(),
        })
    }

    /// Usual arithmetic conversions: the common type of two operands.
    fn common_type(&self, a: &Type, b: &Type) -> Type {
        if a.is_ptr() {
            return a.clone();
        }
        if b.is_ptr() {
            return b.clone();
        }
        if *a == Type::F64 || *b == Type::F64 {
            return Type::F64;
        }
        let bits = a
            .int_bits()
            .unwrap_or(32)
            .max(b.int_bits().unwrap_or(32))
            .max(32);
        if bits == 64 {
            Type::I64
        } else {
            Type::I32
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<RV, CompileError> {
        match &e.kind {
            ExprKind::Int(v) => {
                let v = *v;
                if i32::try_from(v).is_ok() {
                    Ok(RV {
                        v: self.b.const_i32(v as i32),
                        ty: Type::I32,
                    })
                } else {
                    Ok(RV {
                        v: self.b.const_i64(v),
                        ty: Type::I64,
                    })
                }
            }
            ExprKind::Float(v) => Ok(RV {
                v: self.b.const_f64(*v),
                ty: Type::F64,
            }),
            ExprKind::Str(s) => {
                let g = intern_string(self.b.module_mut(), self.data, s);
                let addr = self.b.const_value(ConstValue::GlobalAddr(g));
                let p = self.b.cast(CastKind::PtrCast, Type::I8.ptr_to(), addr);
                Ok(RV {
                    v: p,
                    ty: Type::I8.ptr_to(),
                })
            }
            ExprKind::Ident(name) => {
                if let Some(lv) = self.lookup(name) {
                    return Ok(self.load_lvalue(lv));
                }
                if let Some((gid, ty)) = self.data.globals.get(name).cloned() {
                    let addr = self.b.const_value(ConstValue::GlobalAddr(gid));
                    return Ok(self.load_lvalue(LV { addr, ty }));
                }
                if let Some(info) = self.data.functions.get(name) {
                    let id = info.id;
                    let sig = FuncSig {
                        params: info.src_params.clone(),
                        ret: info.src_ret.clone(),
                    };
                    let v = self.b.const_value(ConstValue::FuncAddr(id));
                    let v = self.b.cast(
                        CastKind::PtrCast,
                        Type::Func(Box::new(sig.clone())).ptr_to(),
                        v,
                    );
                    return Ok(RV {
                        v,
                        ty: Type::Func(Box::new(sig)).ptr_to(),
                    });
                }
                Err(CompileError::sema(
                    e.line,
                    format!("unknown identifier {name}"),
                ))
            }
            ExprKind::Unary(op, inner) => self.unary(e.line, *op, inner),
            ExprKind::Binary(op, lhs, rhs) => {
                let l = self.expr(lhs)?;
                let r = self.expr(rhs)?;
                self.binary_values(e.line, *op, l, r)
            }
            ExprKind::LogicalAnd(lhs, rhs) => self.short_circuit(lhs, rhs, true),
            ExprKind::LogicalOr(lhs, rhs) => self.short_circuit(lhs, rhs, false),
            ExprKind::Assign { op, lhs, rhs } => self.assign(e.line, *op, lhs, rhs),
            ExprKind::Ternary(cond, a, c) => self.ternary(cond, a, c),
            ExprKind::Call { callee, args } => self.call(e.line, callee, args),
            ExprKind::Index(..) | ExprKind::Member { .. } => {
                let lv = self.lvalue(e)?;
                Ok(self.load_lvalue(lv))
            }
            ExprKind::Cast(te, inner) => {
                let target = self.data.resolve_type(te, e.line)?;
                let rv = self.expr(inner)?;
                self.convert_at(rv, &target, e.line)
            }
            ExprKind::SizeofType(te) => {
                let ty = self.data.resolve_type(te, e.line)?;
                let size = self.data.layout.size_of(&ty, self.b.module());
                Ok(RV {
                    v: self.b.const_i64(size as i64),
                    ty: Type::I64,
                })
            }
            ExprKind::InitList(_) => Err(CompileError::sema(
                e.line,
                "initializer list outside initialization",
            )),
            ExprKind::Syscall(args) => {
                if args.is_empty() {
                    return Err(CompileError::sema(e.line, "syscall needs a number"));
                }
                let ExprKind::Int(num) = args[0].kind else {
                    return Err(CompileError::sema(
                        e.line,
                        "syscall number must be a literal",
                    ));
                };
                let mut vals = Vec::new();
                for a in &args[1..] {
                    let rv = self.expr(a)?;
                    let rv = self.convert_at(rv, &Type::I64, a.line)?;
                    vals.push(rv.v);
                }
                let dst = self.b.new_value(Type::I64);
                self.b.push(Inst::Syscall {
                    dst,
                    number: num as u32,
                    args: vals,
                });
                Ok(RV {
                    v: dst,
                    ty: Type::I64,
                })
            }
        }
    }

    /// Load an lvalue as an rvalue (arrays decay to element pointers;
    /// struct lvalues yield their address, typed `Struct*`).
    fn load_lvalue(&mut self, lv: LV) -> RV {
        match &lv.ty {
            Type::Array(elem, _) => {
                let p = self
                    .b
                    .cast(CastKind::PtrCast, (**elem).clone().ptr_to(), lv.addr);
                RV {
                    v: p,
                    ty: (**elem).clone().ptr_to(),
                }
            }
            Type::Struct(_) => RV {
                v: lv.addr,
                ty: lv.ty.clone().ptr_to(),
            },
            ty => {
                let v = self.b.load(ty.clone(), lv.addr);
                RV { v, ty: lv.ty }
            }
        }
    }

    fn lvalue(&mut self, e: &Expr) -> Result<LV, CompileError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(lv) = self.lookup(name) {
                    return Ok(lv);
                }
                if let Some((gid, ty)) = self.data.globals.get(name).cloned() {
                    let addr = self.b.const_value(ConstValue::GlobalAddr(gid));
                    return Ok(LV { addr, ty });
                }
                Err(CompileError::sema(
                    e.line,
                    format!("unknown identifier {name}"),
                ))
            }
            ExprKind::Unary(UnaryOp::Deref, inner) => {
                let rv = self.expr(inner)?;
                let Type::Ptr(pointee) = &rv.ty else {
                    return Err(CompileError::sema(
                        e.line,
                        format!("cannot deref {}", rv.ty),
                    ));
                };
                Ok(LV {
                    addr: rv.v,
                    ty: (**pointee).clone(),
                })
            }
            ExprKind::Index(base, index) => {
                let base_rv = self.expr(base)?;
                let Type::Ptr(elem) = &base_rv.ty else {
                    return Err(CompileError::sema(
                        e.line,
                        format!("cannot index {}", base_rv.ty),
                    ));
                };
                let elem = (**elem).clone();
                let idx = self.expr(index)?;
                let idx = self.convert_at(idx, &Type::I64, e.line)?;
                let addr = self.b.index_addr(base_rv.v, elem.clone(), idx.v);
                Ok(LV { addr, ty: elem })
            }
            ExprKind::Member { base, field, arrow } => {
                let (addr, sid) = if *arrow {
                    let rv = self.expr(base)?;
                    match &rv.ty {
                        Type::Ptr(p) => match &**p {
                            Type::Struct(sid) => (rv.v, *sid),
                            other => {
                                return Err(CompileError::sema(
                                    e.line,
                                    format!("-> on non-struct pointer to {other}"),
                                ))
                            }
                        },
                        other => return Err(CompileError::sema(e.line, format!("-> on {other}"))),
                    }
                } else {
                    let lv = self.lvalue(base)?;
                    match &lv.ty {
                        Type::Struct(sid) => (lv.addr, *sid),
                        other => return Err(CompileError::sema(e.line, format!(". on {other}"))),
                    }
                };
                let Some(idx) = self.data.field_index(sid, field) else {
                    let sname = self.b.module().struct_def(sid).name.clone();
                    return Err(CompileError::sema(
                        e.line,
                        format!("struct {sname} has no field {field}"),
                    ));
                };
                let fty = self.b.module().struct_def(sid).fields[idx].clone();
                let addr = self.b.field_addr(addr, sid, idx as u32);
                Ok(LV { addr, ty: fty })
            }
            _ => Err(CompileError::sema(e.line, "expression is not an lvalue")),
        }
    }

    /// The address of an aggregate-valued expression: an lvalue's address
    /// or the temporary of an sret call.
    fn aggregate_addr(&mut self, e: &Expr, ty: &Type) -> Result<ValueId, CompileError> {
        if let ExprKind::Call { callee, args } = &e.kind {
            let rv = self.call(e.line, callee, args)?;
            if let Type::Ptr(p) = &rv.ty {
                if **p == *ty {
                    return Ok(rv.v);
                }
            }
            return Err(CompileError::sema(
                e.line,
                "call does not produce this aggregate type",
            ));
        }
        let lv = self.lvalue(e)?;
        if &lv.ty != ty {
            return Err(CompileError::sema(e.line, "aggregate type mismatch"));
        }
        Ok(lv.addr)
    }

    fn unary(&mut self, line: u32, op: UnaryOp, inner: &Expr) -> Result<RV, CompileError> {
        match op {
            UnaryOp::Neg => {
                let rv = self.expr(inner)?;
                let ty = self.common_type(&rv.ty, &Type::I32);
                let rv = self.convert_at(rv, &ty, line)?;
                let v = self.b.un(UnOp::Neg, ty.clone(), rv.v);
                Ok(RV { v, ty })
            }
            UnaryOp::BitNot => {
                let rv = self.expr(inner)?;
                let ty = self.common_type(&rv.ty, &Type::I32);
                if ty == Type::F64 {
                    return Err(CompileError::sema(line, "~ on double"));
                }
                let rv = self.convert_at(rv, &ty, line)?;
                let v = self.b.un(UnOp::Not, ty.clone(), rv.v);
                Ok(RV { v, ty })
            }
            UnaryOp::LogicalNot => {
                let rv = self.expr(inner)?;
                let t = self.truthiness(rv);
                let z = self.b.const_i32(0);
                let v = self.b.cmp(CmpOp::Eq, Type::I32, t, z);
                Ok(RV { v, ty: Type::I32 })
            }
            UnaryOp::Deref => {
                // `*fp` on a function pointer is the function designator,
                // which immediately decays back to the pointer (C 6.3.2.1).
                let rv = self.expr(inner)?;
                if let Type::Ptr(p) = &rv.ty {
                    if matches!(&**p, Type::Func(_)) {
                        return Ok(rv);
                    }
                }
                let Type::Ptr(pointee) = &rv.ty else {
                    return Err(CompileError::sema(line, format!("cannot deref {}", rv.ty)));
                };
                let lv = LV {
                    addr: rv.v,
                    ty: (**pointee).clone(),
                };
                Ok(self.load_lvalue(lv))
            }
            UnaryOp::AddrOf => {
                // `&function` yields a function pointer.
                if let ExprKind::Ident(name) = &inner.kind {
                    if self.lookup(name).is_none()
                        && !self.data.globals.contains_key(name)
                        && self.data.functions.contains_key(name)
                    {
                        return self.expr(inner);
                    }
                }
                let lv = self.lvalue(inner)?;
                Ok(RV {
                    v: lv.addr,
                    ty: lv.ty.ptr_to(),
                })
            }
            UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::PostInc | UnaryOp::PostDec => {
                let lv = self.lvalue(inner)?;
                let old = self.load_lvalue(lv.clone());
                let delta: i64 = match op {
                    UnaryOp::PreInc | UnaryOp::PostInc => 1,
                    _ => -1,
                };
                let new = match &lv.ty {
                    Type::Ptr(elem) => {
                        let d = self.b.const_i64(delta);
                        let p = self.b.index_addr(old.v, (**elem).clone(), d);
                        self.b.cast(CastKind::PtrCast, lv.ty.clone(), p)
                    }
                    Type::F64 => {
                        let d = self.b.const_f64(delta as f64);
                        self.b.bin(BinOp::Add, Type::F64, old.v, d)
                    }
                    ty => {
                        let d = self.b.const_value(match ty {
                            Type::I64 => ConstValue::I64(delta),
                            Type::I16 => ConstValue::I16(delta as i16),
                            Type::I8 => ConstValue::I8(delta as i8),
                            _ => ConstValue::I32(delta as i32),
                        });
                        self.b.bin(BinOp::Add, ty.clone(), old.v, d)
                    }
                };
                self.b.store(lv.ty.clone(), lv.addr, new);
                let v = match op {
                    UnaryOp::PostInc | UnaryOp::PostDec => old.v,
                    _ => new,
                };
                Ok(RV { v, ty: lv.ty })
            }
        }
    }

    fn binary_values(&mut self, line: u32, op: BinaryOp, l: RV, r: RV) -> Result<RV, CompileError> {
        use BinaryOp::*;

        if matches!(op, Add | Sub) && (l.ty.is_ptr() || r.ty.is_ptr()) {
            return self.pointer_arith(line, op, l, r);
        }

        let is_cmp = matches!(op, Eq | Ne | Lt | Le | Gt | Ge);
        let common = self.common_type(&l.ty, &r.ty);
        let l = self.convert_at(l, &common, line)?;
        let r = self.convert_at(r, &common, line)?;
        if is_cmp {
            let cmp_op = match op {
                Eq => CmpOp::Eq,
                Ne => CmpOp::Ne,
                Lt => CmpOp::Lt,
                Le => CmpOp::Le,
                Gt => CmpOp::Gt,
                Ge => CmpOp::Ge,
                _ => unreachable!(),
            };
            let v = self.b.cmp(cmp_op, common, l.v, r.v);
            return Ok(RV { v, ty: Type::I32 });
        }
        if common == Type::F64 && matches!(op, Rem | BitAnd | BitOr | BitXor | Shl | Shr) {
            return Err(CompileError::sema(
                line,
                format!("operator {op:?} on double"),
            ));
        }
        let bin_op = match op {
            Add => BinOp::Add,
            Sub => BinOp::Sub,
            Mul => BinOp::Mul,
            Div => BinOp::Div,
            Rem => BinOp::Rem,
            BitAnd => BinOp::And,
            BitOr => BinOp::Or,
            BitXor => BinOp::Xor,
            Shl => BinOp::Shl,
            Shr => BinOp::Shr,
            _ => unreachable!(),
        };
        let v = self.b.bin(bin_op, common.clone(), l.v, r.v);
        Ok(RV { v, ty: common })
    }

    fn pointer_arith(&mut self, line: u32, op: BinaryOp, l: RV, r: RV) -> Result<RV, CompileError> {
        match (&l.ty.clone(), &r.ty.clone(), op) {
            (Type::Ptr(pa), Type::Ptr(_), BinaryOp::Sub) => {
                let size = self.data.layout.size_of(pa, self.b.module()) as i64;
                let li = self.b.cast(CastKind::PtrToInt, Type::I64, l.v);
                let ri = self.b.cast(CastKind::PtrToInt, Type::I64, r.v);
                let diff = self.b.bin(BinOp::Sub, Type::I64, li, ri);
                let s = self.b.const_i64(size);
                let v = self.b.bin(BinOp::Div, Type::I64, diff, s);
                Ok(RV { v, ty: Type::I64 })
            }
            (Type::Ptr(elem), rt, _) if rt.is_int() => {
                let elem = (**elem).clone();
                let idx = self.convert_at(r, &Type::I64, line)?;
                let idx_v = if op == BinaryOp::Sub {
                    self.b.un(UnOp::Neg, Type::I64, idx.v)
                } else {
                    idx.v
                };
                let v = self.b.index_addr(l.v, elem.clone(), idx_v);
                Ok(RV {
                    v,
                    ty: elem.ptr_to(),
                })
            }
            (lt, Type::Ptr(elem), BinaryOp::Add) if lt.is_int() => {
                let elem = (**elem).clone();
                let idx = self.convert_at(l, &Type::I64, line)?;
                let v = self.b.index_addr(r.v, elem.clone(), idx.v);
                Ok(RV {
                    v,
                    ty: elem.ptr_to(),
                })
            }
            _ => Err(CompileError::sema(line, "invalid pointer arithmetic")),
        }
    }

    fn short_circuit(&mut self, lhs: &Expr, rhs: &Expr, is_and: bool) -> Result<RV, CompileError> {
        let result = self.alloca(Type::I32, 1);
        let l = self.cond(lhs)?;
        let bb_rhs = self.b.new_block();
        let bb_short = self.b.new_block();
        let bb_join = self.b.new_block();
        if is_and {
            self.b.cond_br(l, bb_rhs, bb_short);
        } else {
            self.b.cond_br(l, bb_short, bb_rhs);
        }
        self.b.switch_to(bb_short);
        let short_val = self.b.const_i32(i32::from(!is_and));
        self.b.store(Type::I32, result, short_val);
        self.b.br(bb_join);
        self.b.switch_to(bb_rhs);
        let r = self.cond(rhs)?;
        let z = self.b.const_i32(0);
        let rbool = self.b.cmp(CmpOp::Ne, Type::I32, r, z);
        self.b.store(Type::I32, result, rbool);
        self.b.br(bb_join);
        self.b.switch_to(bb_join);
        let v = self.b.load(Type::I32, result);
        Ok(RV { v, ty: Type::I32 })
    }

    fn ternary(&mut self, cond: &Expr, a: &Expr, c: &Expr) -> Result<RV, CompileError> {
        let cv = self.cond(cond)?;
        let bb_a = self.b.new_block();
        let bb_c = self.b.new_block();
        let bb_join = self.b.new_block();
        self.b.cond_br(cv, bb_a, bb_c);
        self.b.switch_to(bb_a);
        let av = self.expr(a)?;
        let ty = av.ty.clone();
        let slot = self.alloca(ty.clone(), 1);
        self.b.store(ty.clone(), slot, av.v);
        self.b.br(bb_join);
        self.b.switch_to(bb_c);
        let cv2 = self.expr(c)?;
        let cv2 = self.convert_at(cv2, &ty, cond.line)?;
        self.b.store(ty.clone(), slot, cv2.v);
        self.b.br(bb_join);
        self.b.switch_to(bb_join);
        let v = self.b.load(ty.clone(), slot);
        Ok(RV { v, ty })
    }

    fn assign(
        &mut self,
        line: u32,
        op: Option<BinaryOp>,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<RV, CompileError> {
        let lv = self.lvalue(lhs)?;
        if !lv.ty.is_register() {
            if op.is_some() {
                return Err(CompileError::sema(line, "compound assignment on aggregate"));
            }
            let ty = lv.ty.clone();
            let src = self.aggregate_addr(rhs, &ty)?;
            self.copy_aggregate(lv.addr, src, &ty);
            return Ok(RV {
                v: lv.addr,
                ty: ty.ptr_to(),
            });
        }
        let value = match op {
            None => self.expr(rhs)?,
            Some(bop) => {
                let old = self.load_lvalue(lv.clone());
                let r = self.expr(rhs)?;
                self.binary_values(line, bop, old, r)?
            }
        };
        let value = self.convert_at(value, &lv.ty, line)?;
        self.b.store(lv.ty.clone(), lv.addr, value.v);
        Ok(value)
    }

    fn call(&mut self, line: u32, callee: &Expr, args: &[Expr]) -> Result<RV, CompileError> {
        if let ExprKind::Ident(name) = &callee.kind {
            if self.lookup(name).is_none() && !self.data.globals.contains_key(name) {
                if let Some(builtin) = Builtin::from_name(name) {
                    return self.builtin_call(line, builtin, args);
                }
                if let Some(info) = self.data.functions.get(name).cloned() {
                    return self.direct_call(line, &info, args);
                }
                return Err(CompileError::sema(line, format!("unknown function {name}")));
            }
        }
        // Indirect call through a function-pointer expression.
        let f = self.expr(callee)?;
        let Type::Ptr(p) = &f.ty else {
            return Err(CompileError::sema(
                line,
                format!("cannot call value of type {}", f.ty),
            ));
        };
        let Type::Func(sig) = &**p else {
            return Err(CompileError::sema(
                line,
                format!("cannot call value of type {}", f.ty),
            ));
        };
        let sig = (**sig).clone();
        if sig.params.len() != args.len() {
            return Err(CompileError::sema(
                line,
                format!("call expects {} args, got {}", sig.params.len(), args.len()),
            ));
        }
        let mut vals = Vec::new();
        for (a, pty) in args.iter().zip(&sig.params) {
            let rv = self.lower_arg(a, Some(pty))?;
            vals.push(rv.v);
        }
        match self.b.call_indirect(f.v, sig.ret.clone(), vals) {
            Some(dst) => Ok(RV {
                v: dst,
                ty: sig.ret,
            }),
            None => Ok(RV {
                v: f.v,
                ty: Type::Void,
            }),
        }
    }

    fn lower_arg(&mut self, a: &Expr, pty: Option<&Type>) -> Result<RV, CompileError> {
        let rv = self.expr(a)?;
        match pty {
            Some(t) if t.is_register() => self.convert_at(rv, t, a.line),
            Some(t) => Err(CompileError::sema(
                a.line,
                format!("aggregate {t} must be passed by pointer in MiniC"),
            )),
            None => match &rv.ty {
                // Vararg promotion: small ints to i32.
                Type::I8 | Type::I16 => self.convert_at(rv, &Type::I32, a.line),
                _ => Ok(rv),
            },
        }
    }

    fn direct_call(&mut self, line: u32, info: &FnInfo, args: &[Expr]) -> Result<RV, CompileError> {
        if info.src_params.len() != args.len() {
            return Err(CompileError::sema(
                line,
                format!(
                    "call expects {} args, got {}",
                    info.src_params.len(),
                    args.len()
                ),
            ));
        }
        let mut vals = Vec::new();
        let mut sret_tmp = None;
        if info.sret {
            let tmp = self.alloca(info.src_ret.clone(), 1);
            sret_tmp = Some(tmp);
            vals.push(tmp);
        }
        for (a, pty) in args.iter().zip(&info.src_params.clone()) {
            let rv = self.lower_arg(a, Some(pty))?;
            vals.push(rv.v);
        }
        let dst = self.b.call(info.id, vals);
        if let Some(tmp) = sret_tmp {
            return Ok(RV {
                v: tmp,
                ty: info.src_ret.clone().ptr_to(),
            });
        }
        match &info.src_ret {
            Type::Void => Ok(RV {
                v: ValueId(u32::MAX),
                ty: Type::Void,
            }),
            ty => Ok(RV {
                v: dst.expect("non-void call yields a value"),
                ty: ty.clone(),
            }),
        }
    }

    fn builtin_call(
        &mut self,
        line: u32,
        builtin: Builtin,
        args: &[Expr],
    ) -> Result<RV, CompileError> {
        use Builtin::*;
        let (param_tys, ret): (Vec<Option<Type>>, Type) = match builtin {
            Malloc | UMalloc => (vec![Some(Type::I64)], Type::I8.ptr_to()),
            Free | UFree => (vec![Some(Type::I8.ptr_to())], Type::Void),
            Memcpy => (
                vec![
                    Some(Type::I8.ptr_to()),
                    Some(Type::I8.ptr_to()),
                    Some(Type::I64),
                ],
                Type::I8.ptr_to(),
            ),
            Memset => (
                vec![Some(Type::I8.ptr_to()), Some(Type::I32), Some(Type::I64)],
                Type::I8.ptr_to(),
            ),
            Strlen => (vec![Some(Type::I8.ptr_to())], Type::I64),
            Strcmp => (
                vec![Some(Type::I8.ptr_to()), Some(Type::I8.ptr_to())],
                Type::I32,
            ),
            Strcpy => (
                vec![Some(Type::I8.ptr_to()), Some(Type::I8.ptr_to())],
                Type::I8.ptr_to(),
            ),
            Printf | Scanf => {
                let mut tys = vec![Some(Type::I8.ptr_to())];
                tys.extend(std::iter::repeat_n(None, args.len().saturating_sub(1)));
                (tys, Type::I32)
            }
            Putchar => (vec![Some(Type::I32)], Type::I32),
            Getchar => (vec![], Type::I32),
            FOpen => (
                vec![Some(Type::I8.ptr_to()), Some(Type::I8.ptr_to())],
                Type::I32,
            ),
            FClose => (vec![Some(Type::I32)], Type::I32),
            FRead | FWrite => (
                vec![
                    Some(Type::I8.ptr_to()),
                    Some(Type::I64),
                    Some(Type::I64),
                    Some(Type::I32),
                ],
                Type::I64,
            ),
            Sqrt | Fabs | Exp | Log | Sin | Cos | Floor => (vec![Some(Type::F64)], Type::F64),
            Pow => (vec![Some(Type::F64), Some(Type::F64)], Type::F64),
            Clock => (vec![], Type::I64),
            Exit => (vec![Some(Type::I32)], Type::Void),
            other => {
                return Err(CompileError::sema(
                    line,
                    format!("builtin {other} cannot be called from source"),
                ))
            }
        };
        if param_tys.len() != args.len() {
            return Err(CompileError::sema(
                line,
                format!(
                    "{builtin} expects {} args, got {}",
                    param_tys.len(),
                    args.len()
                ),
            ));
        }
        let mut vals = Vec::new();
        for (a, pty) in args.iter().zip(&param_tys) {
            let rv = self.lower_arg(a, pty.as_ref())?;
            vals.push(rv.v);
        }
        match self.b.call_builtin(builtin, ret.clone(), vals) {
            Some(dst) => Ok(RV { v: dst, ty: ret }),
            None => Ok(RV {
                v: ValueId(u32::MAX),
                ty: Type::Void,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use offload_ir::verify::verify_module;

    fn compile(src: &str) -> offload_ir::Module {
        let m = crate::compile(src, "test").unwrap();
        verify_module(&m).unwrap();
        m
    }

    #[test]
    fn lowers_arithmetic_function() {
        let m = compile("int f(int a, int b) { return a * b + 1; }");
        let f = m.function_by_name("f").unwrap();
        assert!(m.function(f).inst_count() > 4);
    }

    #[test]
    fn lowers_control_flow() {
        compile(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n\
             int main() { return fib(10); }",
        );
    }

    #[test]
    fn lowers_loops_and_arrays() {
        compile(
            "int sum(int *a, int n) { int s = 0; int i; for (i = 0; i < n; i++) s += a[i]; return s; }\n\
             int main() { int a[8]; int i; for (i = 0; i < 8; i++) a[i] = i; return sum(a, 8); }",
        );
    }

    #[test]
    fn lowers_structs_and_pointers() {
        compile(
            "typedef struct { char from; char to; double score; } Move;\n\
             double best(Move *moves, int n) {\n\
               double s = -1.0; int i;\n\
               for (i = 0; i < n; i++) if (moves[i].score > s) s = moves[i].score;\n\
               return s;\n\
             }",
        );
    }

    #[test]
    fn lowers_struct_return_as_sret() {
        let m = compile(
            "typedef struct { int x; int y; } Pt;\n\
             Pt mk(int x, int y) { Pt p; p.x = x; p.y = y; return p; }\n\
             int main() { Pt p; p = mk(1, 2); return p.x + p.y; }",
        );
        let mk = m.function_by_name("mk").unwrap();
        let f = m.function(mk);
        assert_eq!(f.ret, offload_ir::Type::Void, "sret rewrites the return");
        assert_eq!(f.params.len(), 3, "hidden out-pointer first");
        assert!(f.params[0].is_ptr());
    }

    #[test]
    fn lowers_function_pointers() {
        let m = compile(
            "double half(double x) { return x / 2.0; }\n\
             double twice(double x) { return x * 2.0; }\n\
             double (*table[2])(double) = { half, twice };\n\
             double apply(int i, double x) { double (*f)(double); f = table[i]; return f(x); }",
        );
        assert!(m.global_by_name("table").is_some());
    }

    #[test]
    fn lowers_globals_with_initializers() {
        let m = compile(
            "int counter = 5;\n\
             double pi = 3.14;\n\
             int primes[4] = {2, 3, 5, 7};\n\
             char msg[8] = \"hi\";\n\
             int main() { return counter + primes[1]; }",
        );
        use offload_ir::module::GlobalInit;
        let g = m.global(m.global_by_name("primes").unwrap());
        match &g.init {
            GlobalInit::Scalars(v) => assert_eq!(v.len(), 4),
            other => panic!("unexpected init {other:?}"),
        }
    }

    #[test]
    fn lowers_logic_and_ternary() {
        compile("int f(int a, int b) { return (a && b) || (!a && a < b) ? a : b; }");
    }

    #[test]
    fn lowers_io_builtins() {
        compile(
            "int main() {\n\
               int x; double d;\n\
               scanf(\"%d %lf\", &x, &d);\n\
               printf(\"%d %f\\n\", x, d);\n\
               int fd = fopen(\"data.bin\", \"r\");\n\
               char buf[16];\n\
               fread(buf, 1, 16, fd);\n\
               fclose(fd);\n\
               return 0;\n\
             }",
        );
    }

    #[test]
    fn lowers_malloc_and_sizeof() {
        compile(
            "typedef struct { char loc; char owner; char type; } Piece;\n\
             Piece *board;\n\
             int main() { board = (Piece*)malloc(sizeof(Piece) * 64); free((char*)board); return 0; }",
        );
    }

    #[test]
    fn lowers_asm_and_syscall_markers() {
        let m = compile("int main() { asm(\"nop\"); syscall(7, 1); return 0; }");
        let main = m.function(m.entry.unwrap());
        let has_asm = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, offload_ir::Inst::InlineAsm { .. }));
        let has_sys = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, offload_ir::Inst::Syscall { .. }));
        assert!(has_asm && has_sys);
    }

    #[test]
    fn errors_on_unknown_identifier() {
        let err = crate::compile("int main() { return nope; }", "t").unwrap_err();
        assert!(err.message.contains("unknown identifier"), "{err}");
    }

    #[test]
    fn errors_on_bad_call_arity() {
        let err = crate::compile("int f(int a) { return a; } int main() { return f(); }", "t")
            .unwrap_err();
        assert!(err.message.contains("expects 1 args"), "{err}");
    }

    #[test]
    fn errors_on_deref_non_pointer() {
        let err = crate::compile("int main() { int x; return *x; }", "t").unwrap_err();
        assert!(err.message.contains("cannot deref"), "{err}");
    }

    #[test]
    fn errors_on_break_outside_loop() {
        let err = crate::compile("int main() { break; return 0; }", "t").unwrap_err();
        assert!(err.message.contains("break outside loop"), "{err}");
    }

    #[test]
    fn pointer_arithmetic_forms() {
        compile(
            "long dist(int *a, int *b) { return a - b; }\n\
             int *next(int *p) { return p + 1; }\n\
             int *prev(int *p) { return p - 1; }\n\
             int deref_off(int *p, int i) { return *(p + i); }",
        );
    }

    #[test]
    fn increments_on_pointers_and_doubles() {
        compile(
            "int f() {\n\
               int a[4]; int *p = a; p++; ++p; p--;\n\
               double d = 1.0; d++; --d;\n\
               int i = 0; return i++ + --i;\n\
             }",
        );
    }

    #[test]
    fn multidim_arrays() {
        compile(
            "int grid[3][4];\n\
             int f(int i, int j) { return grid[i][j]; }\n\
             void g() { grid[1][2] = 7; }",
        );
    }

    #[test]
    fn char_string_interning_dedups() {
        let m = compile(r#"int main() { printf("x"); printf("x"); return 0; }"#);
        let count = m
            .iter_globals()
            .filter(|(_, g)| g.name.starts_with(".str"))
            .count();
        assert_eq!(count, 1);
    }
}

#[cfg(test)]
mod switch_tests {
    use offload_ir::verify::verify_module;
    use offload_machine::host::LocalHost;
    use offload_machine::loader;
    use offload_machine::target::TargetSpec;
    use offload_machine::vm::{StackBank, Vm};

    fn run(src: &str) -> String {
        let module = crate::compile(src, "switch").unwrap();
        verify_module(&module).unwrap();
        let spec = TargetSpec::galaxy_s5();
        let image = loader::load(&module, &spec.data_layout()).unwrap();
        let mut host = LocalHost::new();
        let mut vm = Vm::new(&module, &spec, image, StackBank::Mobile);
        vm.set_fuel(10_000_000);
        vm.run_entry(&mut host).unwrap();
        host.console_utf8()
    }

    #[test]
    fn switch_dispatch_and_default() {
        let out = run("int classify(int x) {
                switch (x) {
                    case 1: return 10;
                    case 2: return 20;
                    case -3: return 30;
                    default: return 99;
                }
            }
            int main() {
                printf(\"%d %d %d %d\\n\", classify(1), classify(2), classify(-3), classify(7));
                return 0;
            }");
        assert_eq!(out, "10 20 30 99\n");
    }

    #[test]
    fn switch_fallthrough_and_break() {
        // case 1 falls into case 2; case 2 breaks; empty labels chain.
        let out = run("int f(int x) {
                int acc = 0;
                switch (x) {
                    case 1: acc += 1;
                    case 2: acc += 2; break;
                    case 3:
                    case 4: acc += 40; break;
                    default: acc = -1;
                }
                return acc;
            }
            int main() {
                printf(\"%d %d %d %d %d\\n\", f(1), f(2), f(3), f(4), f(9));
                return 0;
            }");
        assert_eq!(out, "3 2 40 40 -1\n");
    }

    #[test]
    fn switch_without_default_skips() {
        let out = run("int main() {
                int acc = 5;
                switch (acc) { case 1: acc = 0; break; }
                printf(\"%d\\n\", acc);
                return 0;
            }");
        assert_eq!(out, "5\n");
    }

    #[test]
    fn continue_inside_switch_targets_the_loop() {
        let out = run("int main() {
                int i; int acc = 0;
                for (i = 0; i < 6; i++) {
                    switch (i % 3) {
                        case 0: continue;
                        case 1: acc += 10; break;
                        default: acc += 1;
                    }
                    acc += 100;
                }
                printf(\"%d\\n\", acc);
                return 0;
            }");
        // i=0,3: continue. i=1,4: +10+100. i=2,5: +1+100.
        assert_eq!(out, "422\n");
    }

    #[test]
    fn break_inside_switch_does_not_exit_loop() {
        let out = run("int main() {
                int i; int acc = 0;
                for (i = 0; i < 3; i++) {
                    switch (i) { default: acc += 1; break; }
                    acc += 10;
                }
                printf(\"%d\\n\", acc);
                return 0;
            }");
        assert_eq!(out, "33\n");
    }

    #[test]
    fn continue_in_bare_switch_is_an_error() {
        let err = crate::compile(
            "int main() { switch (1) { default: continue; } return 0; }",
            "t",
        )
        .unwrap_err();
        assert!(err.message.contains("continue outside loop"), "{err}");
    }
}
