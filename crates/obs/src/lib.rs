//! # offload-obs
//!
//! Structured tracing and metrics for the Native Offloader stack — the
//! observability substrate the paper's whole evaluation (Fig. 6–8,
//! Table 4) is read off.
//!
//! * [`event`] — the typed event vocabulary: compiler phase spans,
//!   offload life-cycle spans, demand faults, prefetch, write-back,
//!   compression, remote I/O, function-pointer translation, frame tx/rx,
//!   power-state transitions. All events are `Copy` and numeric.
//! * [`collector`] — the [`Collector`] trait with an allocation-free
//!   [`NoopCollector`] (the default: untraced runs pay nothing) and a
//!   ring-buffered [`TraceCollector`] that also maintains metrics.
//! * [`metrics`] — counters and fixed-bucket histograms
//!   ([`MetricsRegistry`] / [`MetricsSnapshot`]).
//! * [`shard`] — per-job [`TraceShard`]s plus the deterministic
//!   job-index merge the concurrent session farm relies on.
//! * [`export`] — Chrome `trace_event` JSONL plus human `--tree` /
//!   `--timeline` renderers.
//! * [`profile`] — the trace analyst: critical-path lane attribution
//!   (which lane, remote op, and page range every simulated second went
//!   to), [`profile::ProfileSummary`] serialization, and noise-tolerant
//!   cross-run regression diffing.
//! * [`series`] — fixed-Δt resampling of lane occupancy and queue
//!   depths into sparkline dashboards and Chrome counter tracks.
//! * [`log`] — a tiny leveled stderr logger for the CLI tools.
//!
//! This crate has **zero dependencies** and sits below every other crate
//! in the workspace: `net` and `machine` emit into a `&mut dyn
//! Collector`, `core` threads one through the compiler and the offload
//! session, and `bench` exports what was recorded.

pub mod collector;
pub mod event;
pub mod export;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod series;
pub mod shard;

pub use collector::{Collector, CompileClock, NoopCollector, TraceCollector};
pub use event::{
    CompilePhase, CostLane, DiagLane, Dir, EngineLane, EventKind, FrameKind, PowerLane, QueueLane,
    Record, RemoteOp, Span,
};
pub use log::{Logger, Verbosity};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use shard::{merge_shards, MergedTrace, TraceShard};
