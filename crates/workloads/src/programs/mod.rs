//! The 17 SPEC miniatures, grouped by domain.

pub mod compress;
pub mod games;
pub mod graph;
pub mod media;
pub mod science;

use crate::WorkloadSpec;

/// All 17 miniatures in Table 4 order.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        compress::gzip(),
        graph::vpr(),
        media::mesa(),
        science::art(),
        science::equake(),
        science::ammp(),
        graph::twolf(),
        compress::bzip2(),
        graph::mcf(),
        science::milc(),
        games::gobmk(),
        media::hmmer(),
        games::sjeng(),
        games::libquantum(),
        media::h264ref(),
        science::lbm(),
        media::sphinx3(),
    ]
}
