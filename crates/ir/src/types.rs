//! The IR type system.
//!
//! Types mirror the C subset the Native Offloader paper manipulates:
//! fixed-width integers, IEEE doubles, pointers, fixed-size arrays, named
//! structs and function pointers. Struct bodies live in the
//! [`Module`](crate::module::Module) and are referenced by [`StructId`]; the
//! `Type` value itself stays cheap to clone and compare.

use std::fmt;

use crate::module::StructId;

/// An IR type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// No value (function return only).
    Void,
    /// 8-bit integer (C `char`).
    I8,
    /// 16-bit integer (C `short`).
    I16,
    /// 32-bit integer (C `int`).
    I32,
    /// 64-bit integer (C `long long`).
    I64,
    /// 64-bit IEEE float (C `double`).
    F64,
    /// Pointer to a value of the given type.
    Ptr(Box<Type>),
    /// Fixed-size array of `len` elements.
    Array(Box<Type>, usize),
    /// A named struct; fields live in the module's struct table.
    Struct(StructId),
    /// Function signature, used behind pointers for indirect calls.
    Func(Box<FuncSig>),
}

/// A function signature: parameter types plus a return type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncSig {
    /// Parameter types, in order.
    pub params: Vec<Type>,
    /// Return type ([`Type::Void`] for none).
    pub ret: Type,
}

impl Type {
    /// A pointer to `self`.
    #[must_use]
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// An array of `len` copies of `self`.
    #[must_use]
    pub fn array_of(self, len: usize) -> Type {
        Type::Array(Box::new(self), len)
    }

    /// Returns `true` for the integer scalar types.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::I8 | Type::I16 | Type::I32 | Type::I64)
    }

    /// Returns `true` for [`Type::F64`].
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F64)
    }

    /// Returns `true` for pointer types (including function pointers
    /// spelled as `Ptr(Func(..))`).
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Returns `true` if values of this type fit in a virtual register:
    /// every scalar, pointer or function type. Aggregates (arrays, structs)
    /// are manipulated through memory.
    pub fn is_register(&self) -> bool {
        !matches!(self, Type::Void | Type::Array(..) | Type::Struct(_))
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(inner) => Some(inner),
            _ => None,
        }
    }

    /// Integer bit width, if this is an integer type.
    pub fn int_bits(&self) -> Option<u32> {
        match self {
            Type::I8 => Some(8),
            Type::I16 => Some(16),
            Type::I32 => Some(32),
            Type::I64 => Some(64),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::I8 => write!(f, "i8"),
            Type::I16 => write!(f, "i16"),
            Type::I32 => write!(f, "i32"),
            Type::I64 => write!(f, "i64"),
            Type::F64 => write!(f, "f64"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
            Type::Array(inner, len) => write!(f, "[{len} x {inner}]"),
            Type::Struct(id) => write!(f, "%s{}", id.0),
            Type::Func(sig) => {
                write!(f, "{} (", sig.ret)?;
                for (i, p) in sig.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A named struct definition.
///
/// Field layout (offsets, padding) is *not* part of the definition: it is
/// computed per target ABI by [`layout`](crate::layout), which is exactly the
/// freedom the paper's memory-layout realignment exploits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Source-level name, used by the printer.
    pub name: String,
    /// Field types in declaration order.
    pub fields: Vec<Type>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_predicates() {
        assert!(Type::I32.is_int());
        assert!(!Type::F64.is_int());
        assert!(Type::F64.is_float());
        assert!(Type::I8.ptr_to().is_ptr());
        assert!(Type::I32.is_register());
        assert!(!Type::I32.array_of(4).is_register());
        assert!(!Type::Void.is_register());
    }

    #[test]
    fn pointee_roundtrip() {
        let p = Type::F64.ptr_to();
        assert_eq!(p.pointee(), Some(&Type::F64));
        assert_eq!(Type::I32.pointee(), None);
    }

    #[test]
    fn int_bits() {
        assert_eq!(Type::I8.int_bits(), Some(8));
        assert_eq!(Type::I64.int_bits(), Some(64));
        assert_eq!(Type::F64.int_bits(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::I8.ptr_to().to_string(), "i8*");
        assert_eq!(Type::I16.array_of(3).to_string(), "[3 x i16]");
        let sig = FuncSig {
            params: vec![Type::I32],
            ret: Type::F64,
        };
        assert_eq!(Type::Func(Box::new(sig)).to_string(), "f64 (i32)");
    }
}
