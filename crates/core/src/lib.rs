//! # Native Offloader
//!
//! A from-scratch reproduction of **"Architecture-aware Automatic
//! Computation Offload for Native Applications"** (MICRO 2015): a
//! compiler–runtime cooperative system that automatically offloads heavy,
//! machine-independent tasks of a native application from a (simulated)
//! ARM mobile device to a (simulated) x86 server — no annotations, no
//! virtual machine.
//!
//! The **compiler** ([`compiler`]) selects offload targets from profiles
//! (hot function/loop profiler → function filter → Equation-1 performance
//! estimator), unifies memory across architectures (heap-allocation
//! replacement, referenced-global reallocation, struct-layout realignment,
//! address-size conversion, endianness translation — §3.2), partitions the
//! program into a mobile module and a server module (§3.3), and applies
//! server-specific optimizations (remote I/O, function-pointer mapping —
//! §3.4).
//!
//! The **runtime** ([`runtime`]) executes the two partitions on simulated
//! devices connected by a simulated wireless link, with a unified virtual
//! address space: copy-on-demand paging, prefetch, dirty-page write-back,
//! batching, asymmetric compression, dynamic (re-)estimation, and power
//! accounting (§4, §5).
//!
//! # Quickstart
//!
//! ```
//! use native_offloader::{Offloader, SessionConfig, WorkloadInput};
//! use offload_net::Link;
//!
//! let source = r#"
//!     double heavy(int n) {
//!         double acc = 0.0; int i; int j;
//!         for (i = 0; i < n; i++)
//!             for (j = 0; j < 1000; j++)
//!                 acc = acc + (double)((i ^ j) % 17) * 0.5;
//!         return acc;
//!     }
//!     int main() {
//!         printf("%.1f\n", heavy(300));
//!         return 0;
//!     }
//! "#;
//! let app = Offloader::new()
//!     .compile_source(source, "quick", &WorkloadInput::default())
//!     .unwrap();
//! let local = app.run_local(&WorkloadInput::default()).unwrap();
//! let off = app
//!     .run_offloaded(&WorkloadInput::default(), &SessionConfig::fast_network())
//!     .unwrap();
//! assert_eq!(local.console, off.console, "offloading must not change output");
//! assert!(off.total_seconds < local.total_seconds, "the server should win");
//! ```

pub mod compiler;
pub mod config;
pub mod plan;
pub mod runtime;

pub use compiler::analyze::{analyze_module, analyze_source, AnalysisReport, FunctionVerdict};
pub use compiler::certify::{certify_tasks, uva_footprint_space, CertifyOutput};
pub use compiler::{CompiledApp, Offloader};
pub use config::{CompileConfig, SessionConfig, WorkloadInput};
pub use plan::{CompileStats, EstimateRow, OffloadPlan, OffloadTask, RegionCertificate};
pub use runtime::farm::{run_farm, run_farm_logged, FarmJob, FarmResult};
pub use runtime::predict::{PageHistory, StreamMode};
pub use runtime::report::RunReport;
pub use runtime::session::SessionPool;

/// Errors from compilation or simulated execution.
#[derive(Debug)]
pub enum OffloadError {
    /// MiniC front-end failure.
    Compile(offload_minic::CompileError),
    /// IR verification failure after a transformation pass.
    Verify(offload_ir::verify::VerifyError),
    /// Program loading failure.
    Load(offload_machine::loader::LoadError),
    /// Simulated execution failure.
    Vm(offload_machine::vm::VmError),
    /// Anything else (bad configuration, protocol violations).
    Other(String),
}

impl std::fmt::Display for OffloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OffloadError::Compile(e) => write!(f, "{e}"),
            OffloadError::Verify(e) => write!(f, "{e}"),
            OffloadError::Load(e) => write!(f, "{e}"),
            OffloadError::Vm(e) => write!(f, "{e}"),
            OffloadError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for OffloadError {}

impl From<offload_minic::CompileError> for OffloadError {
    fn from(e: offload_minic::CompileError) -> Self {
        OffloadError::Compile(e)
    }
}

impl From<offload_ir::verify::VerifyError> for OffloadError {
    fn from(e: offload_ir::verify::VerifyError) -> Self {
        OffloadError::Verify(e)
    }
}

impl From<offload_machine::loader::LoadError> for OffloadError {
    fn from(e: offload_machine::loader::LoadError) -> Self {
        OffloadError::Load(e)
    }
}

impl From<offload_machine::vm::VmError> for OffloadError {
    fn from(e: offload_machine::vm::VmError) -> Self {
        OffloadError::Vm(e)
    }
}
