//! A complete single-device host: console, scripted stdin, virtual
//! filesystem, and heaps.
//!
//! [`LocalHost`] is what "running the app on the phone" means in this
//! simulation — the baseline every offload experiment is normalized
//! against (the "Local" bars of Fig. 6). The offload runtime in the core
//! crate embeds one `LocalHost` per device and layers the communication
//! protocol on top.

use offload_ir::Builtin;

use crate::heap::HeapAllocator;
use crate::io::{self, InputStream, IoArg, IoError, ScanValue, VirtualFs};
use crate::mem::Memory;
use crate::uva_map;
use crate::vm::{encode_scalar, Host, HostCtx, RtVal, VmError};

/// Which device-local heap a [`LocalHost`] hands out for plain `malloc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalHeapBank {
    /// The mobile device's local arena.
    Mobile,
    /// The server's local arena (at a different base — the reason
    /// un-unified allocations don't transfer across devices).
    Server,
}

/// A self-contained host for one device.
#[derive(Debug)]
pub struct LocalHost {
    console: Vec<u8>,
    stdin: InputStream,
    fs: VirtualFs,
    local_heap: HeapAllocator,
    unified_heap: HeapAllocator,
    /// Count of `scanf`/`getchar` calls (interactive inputs).
    pub interactive_inputs: u64,
}

impl Default for LocalHost {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHost {
    /// A host with empty console input and filesystem, using the mobile
    /// local-heap bank.
    pub fn new() -> Self {
        Self::with_bank(LocalHeapBank::Mobile)
    }

    /// A host using the given local-heap bank.
    pub fn with_bank(bank: LocalHeapBank) -> Self {
        let local_base = match bank {
            LocalHeapBank::Mobile => uva_map::MOBILE_LOCAL_HEAP,
            LocalHeapBank::Server => uva_map::SERVER_LOCAL_HEAP,
        };
        LocalHost {
            console: Vec::new(),
            stdin: InputStream::default(),
            fs: VirtualFs::new(),
            local_heap: HeapAllocator::new(local_base, local_base + 0x0100_0000),
            unified_heap: HeapAllocator::new(uva_map::UNIFIED_HEAP, uva_map::UNIFIED_HEAP_END),
            interactive_inputs: 0,
        }
    }

    /// Script the device's stdin.
    pub fn set_stdin(&mut self, data: impl Into<Vec<u8>>) {
        self.stdin = InputStream::new(data);
    }

    /// Add a file to the device filesystem.
    pub fn add_file(&mut self, name: impl Into<String>, data: impl Into<Vec<u8>>) {
        self.fs.add_file(name, data);
    }

    /// Everything printed so far.
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// Console output as UTF-8 (lossy).
    pub fn console_utf8(&self) -> String {
        String::from_utf8_lossy(&self.console).into_owned()
    }

    /// Append bytes to the console (used by the runtime to deliver remote
    /// printf output).
    pub fn console_write(&mut self, bytes: &[u8]) {
        self.console.extend_from_slice(bytes);
    }

    /// The virtual filesystem.
    pub fn fs(&self) -> &VirtualFs {
        &self.fs
    }

    /// Mutable access to the filesystem.
    pub fn fs_mut(&mut self) -> &mut VirtualFs {
        &mut self.fs
    }

    /// The unified (`u_malloc`) heap.
    pub fn unified_heap(&self) -> &HeapAllocator {
        &self.unified_heap
    }

    /// Mutable access to the unified heap (the UVA manager shares this
    /// allocator state across devices).
    pub fn unified_heap_mut(&mut self) -> &mut HeapAllocator {
        &mut self.unified_heap
    }

    /// Run a `printf`-family call against this host's console.
    fn do_printf(&mut self, args: &[RtVal], ctx: &mut HostCtx<'_>) -> Result<RtVal, VmError> {
        let out = render_printf(args, ctx.mem)?;
        ctx.clock.charge(ctx.cpi.io_char * out.len() as u64);
        self.console.extend_from_slice(&out);
        Ok(RtVal::I(out.len() as i64))
    }

    fn do_scanf(&mut self, args: &[RtVal], ctx: &mut HostCtx<'_>) -> Result<RtVal, VmError> {
        self.interactive_inputs += 1;
        let fmt = ctx.mem.read_cstr(args[0].as_addr())?;
        let vals = io::scan_c(&fmt, &mut self.stdin)?;
        ctx.clock.charge(ctx.cpi.io_char * 8 * vals.len() as u64);
        let n = vals.len();
        write_scan_values(&vals, &args[1..], ctx)?;
        Ok(RtVal::I(n as i64))
    }
}

/// Format a printf call's output by reading the format string (and `%s`
/// arguments) from `mem`.
///
/// # Errors
///
/// Propagates memory and formatting errors.
pub fn render_printf(args: &[RtVal], mem: &mut Memory) -> Result<Vec<u8>, VmError> {
    let fmt = mem.read_cstr(args[0].as_addr())?;
    let io_args: Vec<IoArg> = args[1..]
        .iter()
        .map(|v| match v {
            RtVal::I(i) => IoArg::I(*i),
            RtVal::F(f) => IoArg::F(*f),
        })
        .collect();
    // The resolver reads %s payloads out of simulated memory. The borrow
    // is re-established per call.
    let cell = std::cell::RefCell::new(mem);
    let mut resolver = |addr: u64| -> Result<Vec<u8>, IoError> {
        cell.borrow_mut().read_cstr(addr).map_err(|e| IoError {
            message: e.to_string(),
        })
    };
    Ok(io::format_c(&fmt, &io_args, &mut resolver)?)
}

/// Store scanned values through the `scanf` destination pointers.
///
/// # Errors
///
/// Propagates memory errors.
pub fn write_scan_values(
    vals: &[ScanValue],
    dests: &[RtVal],
    ctx: &mut HostCtx<'_>,
) -> Result<(), VmError> {
    for (v, dest) in vals.iter().zip(dests) {
        let addr = dest.as_addr();
        match v {
            ScanValue::I32(x) => {
                let mut b = [0u8; 4];
                encode_scalar(
                    RtVal::I(*x as i64),
                    &offload_ir::Type::I32,
                    ctx.layout.endian,
                    &mut b,
                );
                ctx.mem.write(addr, &b)?;
            }
            ScanValue::I64(x) => {
                let mut b = [0u8; 8];
                encode_scalar(
                    RtVal::I(*x),
                    &offload_ir::Type::I64,
                    ctx.layout.endian,
                    &mut b,
                );
                ctx.mem.write(addr, &b)?;
            }
            ScanValue::F64(x) => {
                let mut b = [0u8; 8];
                encode_scalar(
                    RtVal::F(*x),
                    &offload_ir::Type::F64,
                    ctx.layout.endian,
                    &mut b,
                );
                ctx.mem.write(addr, &b)?;
            }
            ScanValue::Char(c) => ctx.mem.write(addr, &[*c])?,
            ScanValue::Str(s) => {
                ctx.mem.write(addr, s)?;
                ctx.mem.write(addr + s.len() as u64, &[0])?;
            }
        }
    }
    Ok(())
}

impl Host for LocalHost {
    fn page_fault(&mut self, page: u64, _ctx: &mut HostCtx<'_>) -> Result<(), VmError> {
        // A single-device host never expects faults (demand-zero backing).
        Err(VmError::Mem(crate::mem::MemError::PageFault { page }))
    }

    fn builtin(
        &mut self,
        b: Builtin,
        args: &[RtVal],
        ctx: &mut HostCtx<'_>,
    ) -> Result<Option<RtVal>, VmError> {
        use Builtin::*;
        match b {
            Malloc => {
                ctx.clock.charge(ctx.cpi.alloc);
                let addr = self.local_heap.alloc(args[0].as_addr())?;
                Ok(Some(RtVal::I(addr as i64)))
            }
            UMalloc => {
                ctx.clock.charge(ctx.cpi.alloc);
                let addr = self.unified_heap.alloc(args[0].as_addr())?;
                Ok(Some(RtVal::I(addr as i64)))
            }
            Free => {
                ctx.clock.charge(ctx.cpi.alloc / 2);
                self.local_heap.free(args[0].as_addr())?;
                Ok(None)
            }
            UFree => {
                ctx.clock.charge(ctx.cpi.alloc / 2);
                self.unified_heap.free(args[0].as_addr())?;
                Ok(None)
            }
            Printf => self.do_printf(args, ctx).map(Some),
            Scanf => self.do_scanf(args, ctx).map(Some),
            Putchar => {
                ctx.clock.charge(ctx.cpi.io_char);
                self.console.push(args[0].as_i() as u8);
                Ok(Some(RtVal::I(args[0].as_i())))
            }
            Getchar => {
                self.interactive_inputs += 1;
                ctx.clock.charge(ctx.cpi.io_char);
                let c = self.stdin.read_byte().map_or(-1, |b| b as i64);
                Ok(Some(RtVal::I(c)))
            }
            FOpen => {
                ctx.clock.charge(ctx.cpi.io_char * 16);
                let name =
                    String::from_utf8_lossy(&ctx.mem.read_cstr(args[0].as_addr())?).into_owned();
                let mode =
                    String::from_utf8_lossy(&ctx.mem.read_cstr(args[1].as_addr())?).into_owned();
                Ok(Some(RtVal::I(self.fs.open(&name, &mode) as i64)))
            }
            FClose => {
                ctx.clock.charge(ctx.cpi.io_char * 4);
                let ok = self.fs.close(args[0].as_i() as i32);
                Ok(Some(RtVal::I(if ok { 0 } else { -1 })))
            }
            FRead => {
                let (buf, size, count, fd) = (
                    args[0].as_addr(),
                    args[1].as_addr(),
                    args[2].as_addr(),
                    args[3].as_i() as i32,
                );
                let want = (size * count) as usize;
                let Some(data) = self.fs.read(fd, want) else {
                    return Ok(Some(RtVal::I(0)));
                };
                ctx.mem.write(buf, &data)?;
                ctx.clock
                    .charge(ctx.cpi.io_char / 4 * data.len() as u64 + ctx.cpi.call);
                let items = (data.len() as u64).checked_div(size).unwrap_or(0);
                Ok(Some(RtVal::I(items as i64)))
            }
            FWrite => {
                let (buf, size, count, fd) = (
                    args[0].as_addr(),
                    args[1].as_addr(),
                    args[2].as_addr(),
                    args[3].as_i() as i32,
                );
                let n = (size * count) as usize;
                let mut data = vec![0u8; n];
                ctx.mem.read(buf, &mut data)?;
                let Some(written) = self.fs.write(fd, &data) else {
                    return Ok(Some(RtVal::I(0)));
                };
                ctx.clock
                    .charge(ctx.cpi.io_char / 4 * written as u64 + ctx.cpi.call);
                let items = (written as u64).checked_div(size).unwrap_or(0);
                Ok(Some(RtVal::I(items as i64)))
            }
            FnMapToLocal => {
                // Single device: addresses are already local.
                ctx.clock.charge(ctx.cpi.fn_map);
                Ok(Some(args[0]))
            }
            IsProfitable => {
                // No server attached: offloading is never profitable.
                Ok(Some(RtVal::I(0)))
            }
            other => Err(VmError::MachineSpecific {
                what: format!("builtin {other} has no meaning on an isolated device"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader;
    use crate::target::TargetSpec;
    use crate::vm::{StackBank, Vm};

    fn run(src: &str, stdin: &str) -> (Option<RtVal>, LocalHost) {
        let module = offload_minic::compile(src, "t").unwrap();
        offload_ir::verify::verify_module(&module).unwrap();
        let spec = TargetSpec::galaxy_s5();
        let image = loader::load(&module, &spec.data_layout()).unwrap();
        let mut host = LocalHost::new();
        host.set_stdin(stdin);
        let mut vm = Vm::new(&module, &spec, image, StackBank::Mobile);
        vm.set_fuel(200_000_000);
        let ret = vm.run_entry(&mut host).unwrap();
        (ret, host)
    }

    #[test]
    fn hello_world() {
        let (ret, host) = run(
            r#"int main() { printf("hello %s %d\n", "world", 7); return 0; }"#,
            "",
        );
        assert_eq!(host.console_utf8(), "hello world 7\n");
        assert_eq!(ret, Some(RtVal::I(0)));
    }

    #[test]
    fn fib_recursion() {
        let (ret, _) = run(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n\
             int main() { return fib(15); }",
            "",
        );
        assert_eq!(ret, Some(RtVal::I(610)));
    }

    #[test]
    fn scanf_and_arithmetic() {
        let (_, host) = run(
            "int main() { int a; int b; scanf(\"%d %d\", &a, &b); printf(\"%d\\n\", a*b); return 0; }",
            "6 7",
        );
        assert_eq!(host.console_utf8(), "42\n");
    }

    #[test]
    fn malloc_struct_array() {
        let (_, host) = run(
            "typedef struct { char loc; char owner; char kind; } Piece;\n\
             Piece *board;\n\
             int main() {\n\
               board = (Piece*)malloc(sizeof(Piece) * 64);\n\
               int i;\n\
               for (i = 0; i < 64; i++) { board[i].loc = (char)i; board[i].kind = (char)(i % 6); }\n\
               int sum = 0;\n\
               for (i = 0; i < 64; i++) sum += board[i].kind;\n\
               printf(\"%d\\n\", sum);\n\
               free((char*)board);\n\
               return 0;\n\
             }",
            "",
        );
        // sum of (i % 6) over 0..64 = 10 * 15 + (0+1+2+3) = 156
        assert_eq!(host.console_utf8(), "156\n");
    }

    #[test]
    fn file_io_roundtrip() {
        let module = offload_minic::compile(
            "int main() {\n\
               int fd = fopen(\"in.bin\", \"r\");\n\
               char buf[8];\n\
               long n = fread(buf, 1, 8, fd);\n\
               fclose(fd);\n\
               int out = fopen(\"out.bin\", \"w\");\n\
               fwrite(buf, 1, (int)n, out);\n\
               fclose(out);\n\
               printf(\"%d\\n\", (int)n);\n\
               return 0;\n\
             }",
            "t",
        )
        .unwrap();
        let spec = TargetSpec::galaxy_s5();
        let image = loader::load(&module, &spec.data_layout()).unwrap();
        let mut host = LocalHost::new();
        host.add_file("in.bin", b"abcde".to_vec());
        let mut vm = Vm::new(&module, &spec, image, StackBank::Mobile);
        vm.run_entry(&mut host).unwrap();
        assert_eq!(host.console_utf8(), "5\n");
        assert_eq!(host.fs().file("out.bin").unwrap(), b"abcde");
    }

    #[test]
    fn function_pointers_through_global_table() {
        let (_, host) = run(
            "double half(double x) { return x / 2.0; }\n\
             double twice(double x) { return x * 2.0; }\n\
             double (*table[2])(double) = { half, twice };\n\
             int main() {\n\
               double (*f)(double) = table[1];\n\
               printf(\"%.1f\\n\", f(21.0));\n\
               return 0;\n\
             }",
            "",
        );
        assert_eq!(host.console_utf8(), "42.0\n");
    }

    #[test]
    fn math_builtins() {
        let (_, host) = run(
            "int main() { printf(\"%.3f %.1f\\n\", sqrt(2.0), pow(2.0, 10.0)); return 0; }",
            "",
        );
        assert_eq!(host.console_utf8(), "1.414 1024.0\n");
    }

    #[test]
    fn getchar_reads_stdin() {
        let (ret, _) = run("int main() { return getchar() + getchar(); }", "AB");
        assert_eq!(ret, Some(RtVal::I(65 + 66)));
    }

    #[test]
    fn exit_builtin_stops_program() {
        let (ret, host) = run(
            "int main() { printf(\"a\"); exit(3); printf(\"b\"); return 0; }",
            "",
        );
        assert_eq!(ret, Some(RtVal::I(3)));
        assert_eq!(host.console_utf8(), "a");
    }

    #[test]
    fn cycle_accounting_is_monotone_and_ratio_sane() {
        let src = "int main() { int i; long acc = 0; for (i = 0; i < 100000; i++) acc += i; return (int)(acc % 97); }";
        let module = offload_minic::compile(src, "t").unwrap();

        let mobile = TargetSpec::galaxy_s5();
        let image = loader::load(&module, &mobile.data_layout()).unwrap();
        let mut host = LocalHost::new();
        let mut vm_m = Vm::new(&module, &mobile, image, StackBank::Mobile);
        vm_m.run_entry(&mut host).unwrap();

        let server = TargetSpec::xps_8700();
        let image = loader::load(&module, &mobile.data_layout()).unwrap();
        let mut host2 = LocalHost::with_bank(LocalHeapBank::Server);
        let mut vm_s = Vm::new(&module, &server, image, StackBank::Server);
        vm_s.run_entry(&mut host2).unwrap();

        let t_m = mobile.cycles_to_seconds(vm_m.clock.cycles);
        let t_s = server.cycles_to_seconds(vm_s.clock.cycles);
        let ratio = t_m / t_s;
        assert!(
            (3.0..=15.0).contains(&ratio),
            "mobile/server time ratio {ratio} out of the paper's neighbourhood"
        );
    }

    #[test]
    fn profiling_collects_function_data() {
        let src = "int work(int n) { int i; int acc = 0; for (i = 0; i < n; i++) acc += i; return acc; }\n\
                   int main() { int j; int s = 0; for (j = 0; j < 3; j++) s += work(1000); return s % 100; }";
        let module = offload_minic::compile(src, "t").unwrap();
        let spec = TargetSpec::galaxy_s5();
        let image = loader::load(&module, &spec.data_layout()).unwrap();
        let mut host = LocalHost::new();
        let mut vm = Vm::new(&module, &spec, image, StackBank::Mobile);
        vm.enable_profile();
        vm.run_entry(&mut host).unwrap();
        let prof = vm.profile.take().unwrap();
        let work = module.function_by_name("work").unwrap();
        assert_eq!(prof.funcs[&work].invocations, 3);
        assert!(prof.funcs[&work].inclusive_cycles > 0);
        let main = module.entry.unwrap();
        assert!(prof.funcs[&main].inclusive_cycles >= prof.funcs[&work].inclusive_cycles);
    }

    #[test]
    fn stack_overflow_detected() {
        let module = offload_minic::compile(
            "int boom(int n) { return boom(n + 1); } int main() { return boom(0); }",
            "t",
        )
        .unwrap();
        let spec = TargetSpec::galaxy_s5();
        let image = loader::load(&module, &spec.data_layout()).unwrap();
        let mut host = LocalHost::new();
        let mut vm = Vm::new(&module, &spec, image, StackBank::Mobile);
        let err = vm.run_entry(&mut host).unwrap_err();
        assert_eq!(err, VmError::StackOverflow);
    }

    #[test]
    fn fuel_guard_trips() {
        let module = offload_minic::compile("int main() { while (1) {} return 0; }", "t").unwrap();
        let spec = TargetSpec::galaxy_s5();
        let image = loader::load(&module, &spec.data_layout()).unwrap();
        let mut host = LocalHost::new();
        let mut vm = Vm::new(&module, &spec, image, StackBank::Mobile);
        vm.set_fuel(10_000);
        assert_eq!(vm.run_entry(&mut host).unwrap_err(), VmError::FuelExhausted);
    }

    #[test]
    fn division_by_zero_traps() {
        let module =
            offload_minic::compile("int main() { int z = 0; return 5 / z; }", "t").unwrap();
        let spec = TargetSpec::galaxy_s5();
        let image = loader::load(&module, &spec.data_layout()).unwrap();
        let mut host = LocalHost::new();
        let mut vm = Vm::new(&module, &spec, image, StackBank::Mobile);
        assert_eq!(
            vm.run_entry(&mut host).unwrap_err(),
            VmError::DivisionByZero
        );
    }

    #[test]
    fn string_copy_and_compare_via_memcpy() {
        let (_, host) = run(
            "int main() {\n\
               char a[16] = \"offload\";\n\
               char b[16];\n\
               memcpy(b, a, 8);\n\
               printf(\"%s\\n\", b);\n\
               memset(b, 120, 3);\n\
               printf(\"%s\\n\", b);\n\
               return 0;\n\
             }",
            "",
        );
        assert_eq!(host.console_utf8(), "offload\nxxxload\n");
    }
}

#[cfg(test)]
mod string_builtin_tests {
    use super::*;
    use crate::loader;
    use crate::target::TargetSpec;
    use crate::vm::{StackBank, Vm};

    fn run(src: &str) -> (Option<RtVal>, String) {
        let module = offload_minic::compile(src, "t").unwrap();
        let spec = TargetSpec::galaxy_s5();
        let image = loader::load(&module, &spec.data_layout()).unwrap();
        let mut host = LocalHost::new();
        let mut vm = Vm::new(&module, &spec, image, StackBank::Mobile);
        vm.set_fuel(10_000_000);
        let r = vm.run_entry(&mut host).unwrap();
        (r, host.console_utf8())
    }

    #[test]
    fn strlen_counts_bytes() {
        let (r, _) = run(r#"int main() { return (int)strlen("offload"); }"#);
        assert_eq!(r, Some(RtVal::I(7)));
    }

    #[test]
    fn strcmp_orders() {
        let (_, out) = run(r#"int main() {
                printf("%d %d %d\n", strcmp("abc", "abc"), strcmp("abc", "abd"), strcmp("b", "a"));
                return 0;
            }"#);
        assert_eq!(out, "0 -1 1\n");
    }

    #[test]
    fn strcpy_copies_with_nul() {
        let (_, out) = run(r#"int main() {
                char buf[16];
                strcpy(buf, "hi!");
                printf("%s %d\n", buf, (int)strlen(buf));
                return 0;
            }"#);
        assert_eq!(out, "hi! 3\n");
    }
}
