//! Compile errors.

use std::error::Error;
use std::fmt;

/// The phase in which compilation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic analysis / IR lowering.
    Sema,
}

/// A MiniC compilation error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Failing phase.
    pub phase: Phase,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Construct a lexer error.
    pub fn lex(line: u32, message: impl Into<String>) -> Self {
        CompileError {
            phase: Phase::Lex,
            line,
            message: message.into(),
        }
    }

    /// Construct a parser error.
    pub fn parse(line: u32, message: impl Into<String>) -> Self {
        CompileError {
            phase: Phase::Parse,
            line,
            message: message.into(),
        }
    }

    /// Construct a semantic error.
    pub fn sema(line: u32, message: impl Into<String>) -> Self {
        CompileError {
            phase: Phase::Sema,
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "semantic",
        };
        write!(f, "{phase} error at line {}: {}", self.line, self.message)
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_line() {
        let e = CompileError::parse(7, "expected ';'");
        assert_eq!(e.to_string(), "parse error at line 7: expected ';'");
    }
}
