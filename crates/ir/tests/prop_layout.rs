//! Property tests for the data-layout engine — the foundation the §3.2
//! memory unification stands on. A wrong layout silently corrupts every
//! cross-device struct access, so these invariants get the proptest
//! treatment.

use offload_ir::{Module, StructDef, TargetAbi, Type};
use proptest::prelude::*;

/// A random scalar/pointer/array field type.
fn field_type() -> impl Strategy<Value = Type> {
    let scalar = prop_oneof![
        Just(Type::I8),
        Just(Type::I16),
        Just(Type::I32),
        Just(Type::I64),
        Just(Type::F64),
        Just(Type::I32.ptr_to()),
        Just(Type::F64.ptr_to()),
    ];
    scalar.prop_flat_map(|t| {
        prop_oneof![
            3 => Just(t.clone()),
            1 => (1usize..5).prop_map(move |n| t.clone().array_of(n)),
        ]
    })
}

fn abi() -> impl Strategy<Value = TargetAbi> {
    prop_oneof![
        Just(TargetAbi::MobileArm32),
        Just(TargetAbi::ServerX8664),
        Just(TargetAbi::ServerIa32),
        Just(TargetAbi::ServerBigEndian64),
    ]
}

proptest! {
    /// Field offsets are monotone, aligned, non-overlapping, and the
    /// struct size covers the last field and is a multiple of the struct
    /// alignment — C layout rules, under every ABI.
    #[test]
    fn struct_layout_is_well_formed(fields in prop::collection::vec(field_type(), 1..10), abi in abi()) {
        let mut m = Module::new("prop");
        let sid = m.define_struct(StructDef { name: "S".into(), fields: fields.clone() });
        let layout = abi.data_layout();
        let sl = layout.struct_layout(sid, &m);

        prop_assert_eq!(sl.offsets.len(), fields.len());
        let mut prev_end = 0u64;
        for (field, off) in fields.iter().zip(&sl.offsets) {
            let fa = layout.align_of(field, &m);
            let fs = layout.size_of(field, &m);
            prop_assert_eq!(off % fa, 0, "field at {} misaligned (align {})", off, fa);
            prop_assert!(*off >= prev_end, "fields overlap");
            prev_end = off + fs;
        }
        prop_assert!(sl.size >= prev_end, "size must cover the last field");
        prop_assert_eq!(sl.size % sl.align, 0, "size must be a multiple of alignment");
        let max_field_align = fields.iter().map(|f| layout.align_of(f, &m)).max().unwrap();
        prop_assert_eq!(sl.align, max_field_align);
    }

    /// The unified (mobile) size of any struct is at least its packed
    /// IA32 size: realignment only ever *adds* padding (Fig. 4).
    #[test]
    fn realignment_only_adds_padding(fields in prop::collection::vec(field_type(), 1..10)) {
        let mut m = Module::new("prop");
        let sid = m.define_struct(StructDef { name: "S".into(), fields });
        let arm = TargetAbi::MobileArm32.data_layout().struct_layout(sid, &m);
        let ia32 = TargetAbi::ServerIa32.data_layout().struct_layout(sid, &m);
        prop_assert!(arm.size >= ia32.size);
    }

    /// Pointer-free structs lay out identically on ARM32 and x86-64 (both
    /// align wide scalars to 8) — which is why the paper's eval only hits
    /// realignment through pointer-bearing and packed cases.
    #[test]
    fn ptr_free_structs_agree_between_arm_and_x8664(
        fields in prop::collection::vec(
            prop_oneof![Just(Type::I8), Just(Type::I16), Just(Type::I32), Just(Type::I64), Just(Type::F64)],
            1..10
        )
    ) {
        let mut m = Module::new("prop");
        let sid = m.define_struct(StructDef { name: "S".into(), fields });
        let arm = TargetAbi::MobileArm32.data_layout().struct_layout(sid, &m);
        let x64 = TargetAbi::ServerX8664.data_layout().struct_layout(sid, &m);
        prop_assert_eq!(arm, x64);
    }

    /// Array size is exactly `len * size(elem)` under every ABI.
    #[test]
    fn array_sizes_multiply(elem in field_type(), len in 1usize..20, abi in abi()) {
        let m = Module::new("prop");
        let layout = abi.data_layout();
        let arr = elem.clone().array_of(len);
        prop_assert_eq!(layout.size_of(&arr, &m), layout.size_of(&elem, &m) * len as u64);
        prop_assert_eq!(layout.align_of(&arr, &m), layout.align_of(&elem, &m));
    }
}
