//! Property tests for the machine substrate: paged memory, the heap
//! allocator, scalar encode/decode and the power timeline. These carry
//! the UVA protocol's correctness, so they are fuzzed rather than
//! spot-checked.

use offload_ir::{Endian, Type};
use offload_machine::heap::HeapAllocator;
use offload_machine::mem::{BackingPolicy, Memory};
use offload_machine::power::{PowerSpec, PowerState, PowerTimeline};
use offload_machine::vm::{decode_scalar, encode_scalar, RtVal};
use proptest::prelude::*;

proptest! {
    /// Writes land exactly where they were put, for arbitrary (addr, data)
    /// pairs including page-straddling spans.
    #[test]
    fn memory_write_read_roundtrip(
        writes in prop::collection::vec((0u64..1_000_000, prop::collection::vec(any::<u8>(), 1..600)), 1..20)
    ) {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        // Apply in order; later writes may overwrite earlier ones, so
        // replay into a HashMap model.
        let mut model: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        for (addr, data) in &writes {
            m.write(*addr, data).unwrap();
            for (i, b) in data.iter().enumerate() {
                model.insert(addr + i as u64, *b);
            }
        }
        for (addr, data) in &writes {
            let mut buf = vec![0u8; data.len()];
            m.read(*addr, &mut buf).unwrap();
            for (i, b) in buf.iter().enumerate() {
                prop_assert_eq!(*b, *model.get(&(addr + i as u64)).unwrap());
            }
        }
    }

    /// Every page written is flagged dirty; untouched pages are not.
    #[test]
    fn dirty_pages_are_exactly_the_written_ones(pages in prop::collection::btree_set(0u64..200, 1..20)) {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        // Touch some pages read-only first.
        let mut buf = [0u8; 1];
        for p in 0u64..200 {
            m.read(p * 4096, &mut buf).unwrap();
        }
        m.clear_dirty();
        for p in &pages {
            m.write(p * 4096 + 7, &[1]).unwrap();
        }
        let dirty: std::collections::BTreeSet<u64> = m.dirty_pages().collect();
        prop_assert_eq!(dirty, pages);
    }

    /// Live heap allocations never overlap, stay in-arena, and freeing
    /// everything returns the arena to empty.
    #[test]
    fn heap_allocations_disjoint(sizes in prop::collection::vec(1u64..5_000, 1..40)) {
        let mut h = HeapAllocator::new(0x10000, 0x10000 + (1 << 20));
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let addr = h.alloc(*size).unwrap();
            prop_assert!(addr >= h.base() && addr + size <= h.end());
            for (a, s) in &live {
                prop_assert!(addr + size <= *a || addr >= a + s, "overlap");
            }
            live.push((addr, *size));
            // Free every third allocation as we go, exercising coalescing.
            if i % 3 == 2 {
                let (a, _) = live.remove(i / 3 % live.len().max(1));
                h.free(a).unwrap();
            }
        }
        for (a, _) in live {
            h.free(a).unwrap();
        }
        prop_assert_eq!(h.bytes_in_use(), 0);
        prop_assert_eq!(h.live_count(), 0);
    }

    /// Scalar encode/decode roundtrips for every type/endianness pair —
    /// the §3.2 endianness translation rests on this being exact.
    #[test]
    fn scalar_roundtrip(v in any::<i64>(), f in any::<f64>()) {
        for endian in [Endian::Little, Endian::Big] {
            for (ty, val) in [
                (Type::I8, RtVal::I(v as i8 as i64)),
                (Type::I16, RtVal::I(v as i16 as i64)),
                (Type::I32, RtVal::I(v as i32 as i64)),
                (Type::I64, RtVal::I(v)),
            ] {
                let size = match ty { Type::I8 => 1, Type::I16 => 2, Type::I32 => 4, _ => 8 };
                let mut buf = [0u8; 8];
                encode_scalar(val, &ty, endian, &mut buf[..size]);
                prop_assert_eq!(decode_scalar(&buf[..size], &ty, endian), val);
            }
            if !f.is_nan() {
                let mut buf = [0u8; 8];
                encode_scalar(RtVal::F(f), &Type::F64, endian, &mut buf);
                prop_assert_eq!(decode_scalar(&buf, &Type::F64, endian), RtVal::F(f));
            }
        }
    }

    /// Timeline energy equals the sum of state power × duration, and the
    /// total length equals the sum of durations (merging included).
    #[test]
    fn timeline_energy_is_additive(intervals in prop::collection::vec((0u8..5, 0.0f64..10.0), 1..30)) {
        let spec = PowerSpec::galaxy_s5();
        let mut tl = PowerTimeline::new();
        let mut expect_energy = 0.0;
        let mut expect_len = 0.0;
        for (s, d) in &intervals {
            let state = match s {
                0 => PowerState::Idle,
                1 => PowerState::Compute,
                2 => PowerState::Waiting,
                3 => PowerState::Receive,
                _ => PowerState::Transmit,
            };
            tl.push(state, *d);
            expect_energy += spec.draw_mw(state) * d;
            expect_len += d;
        }
        prop_assert!((tl.energy_mj(&spec) - expect_energy).abs() < 1e-6);
        prop_assert!((tl.total_seconds() - expect_len).abs() < 1e-9);
    }
}
