//! Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
//!
//! Needed by [natural-loop detection](crate::analysis::loops): a back edge
//! `t -> h` exists iff `h` dominates `t`.

use crate::module::{BlockId, Function};

/// The dominator tree of one function's CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block; `idom[entry] == entry`;
    /// unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    /// Reverse-postorder numbering used internally; kept for clients that
    /// want a stable topological-ish order.
    rpo: Vec<BlockId>,
}

impl DomTree {
    /// Compute the dominator tree of `func`.
    pub fn compute(func: &Function) -> Self {
        let n = func.blocks.len();
        let entry = func.entry();

        // Reverse postorder via iterative DFS.
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.0 as usize] = true;
        while let Some(&mut (bb, ref mut next)) = stack.last_mut() {
            let succs = func.successors(bb);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(bb);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = postorder.iter().rev().copied().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, bb) in rpo.iter().enumerate() {
            rpo_index[bb.0 as usize] = i;
        }

        // Predecessor lists.
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (bb, _) in func.iter_blocks() {
            if !visited[bb.0 as usize] {
                continue;
            }
            for s in func.successors(bb) {
                preds[s.0 as usize].push(bb);
            }
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.0 as usize] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &bb in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[bb.0 as usize] {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(cur, p, &idom, &rpo_index),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[bb.0 as usize] != Some(ni) {
                        idom[bb.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, rpo }
    }

    /// Immediate dominator of `bb` (`None` for unreachable blocks; the
    /// entry is its own idom).
    pub fn idom(&self, bb: BlockId) -> Option<BlockId> {
        self.idom.get(bb.0 as usize).copied().flatten()
    }

    /// `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(parent) if parent != cur => cur = parent,
                _ => return false,
            }
        }
    }

    /// Blocks in reverse postorder (reachable blocks only).
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// `true` if `bb` is reachable from the entry.
    pub fn is_reachable(&self, bb: BlockId) -> bool {
        self.idom(bb).is_some()
    }
}

fn intersect(
    mut a: BlockId,
    mut b: BlockId,
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
) -> BlockId {
    while a != b {
        while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed block");
        }
        while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed block");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::Module;
    use crate::types::Type;

    /// Diamond: 0 -> {1, 2} -> 3.
    fn diamond() -> (Module, crate::module::FuncId) {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![Type::I32], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let bb1 = b.new_block();
        let bb2 = b.new_block();
        let bb3 = b.new_block();
        b.cond_br(p, bb1, bb2);
        b.switch_to(bb1);
        b.br(bb3);
        b.switch_to(bb2);
        b.br(bb3);
        b.switch_to(bb3);
        b.ret(None);
        b.finish();
        (m, f)
    }

    #[test]
    fn diamond_doms() {
        let (m, f) = diamond();
        let dt = DomTree::compute(m.function(f));
        let e = BlockId(0);
        assert_eq!(dt.idom(BlockId(1)), Some(e));
        assert_eq!(dt.idom(BlockId(2)), Some(e));
        assert_eq!(
            dt.idom(BlockId(3)),
            Some(e),
            "join dominated by entry, not a branch arm"
        );
        assert!(dt.dominates(e, BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
        assert!(dt.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn loop_header_dominates_body() {
        // 0 -> 1(header) -> 2(body) -> 1, 1 -> 3(exit)
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![Type::I32], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        b.cond_br(p, body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        b.finish();
        let dt = DomTree::compute(m.function(f));
        assert!(dt.dominates(header, body));
        assert!(dt.dominates(header, exit));
        assert_eq!(dt.idom(body), Some(header));
    }

    #[test]
    fn unreachable_block_has_no_idom() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        b.ret(None);
        let dead = b.new_block();
        b.switch_to(dead);
        b.ret(None);
        b.finish();
        let dt = DomTree::compute(m.function(f));
        assert!(!dt.is_reachable(dead));
        assert!(dt.is_reachable(BlockId(0)));
    }

    #[test]
    fn rpo_starts_at_entry() {
        let (m, f) = diamond();
        let dt = DomTree::compute(m.function(f));
        assert_eq!(dt.reverse_postorder().first(), Some(&BlockId(0)));
        assert_eq!(dt.reverse_postorder().len(), 4);
    }

    #[test]
    fn single_block_function_dominates_only_itself() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        b.ret(None);
        b.finish();
        let dt = DomTree::compute(m.function(f));
        let entry = BlockId(0);
        assert_eq!(dt.idom(entry), Some(entry), "entry is its own idom");
        assert!(dt.dominates(entry, entry), "dominance is reflexive");
        assert!(dt.is_reachable(entry));
        assert_eq!(dt.reverse_postorder(), &[entry]);
    }

    #[test]
    fn self_loop_block_is_dominated_by_entry() {
        // 0 -> 1, 1 -> {1, 2}: the self-loop must not confuse the
        // intersection walk.
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![Type::I32], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let looping = b.new_block();
        let exit = b.new_block();
        b.br(looping);
        b.switch_to(looping);
        b.cond_br(p, looping, exit);
        b.switch_to(exit);
        b.ret(None);
        b.finish();
        let dt = DomTree::compute(m.function(f));
        assert_eq!(dt.idom(looping), Some(BlockId(0)));
        assert_eq!(dt.idom(exit), Some(looping));
        assert!(dt.dominates(BlockId(0), exit));
    }

    #[test]
    fn unreachable_blocks_never_dominate_reachable_ones() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        b.ret(None);
        // Two dead blocks, one branching into the other: still dead.
        let dead1 = b.new_block();
        let dead2 = b.new_block();
        b.switch_to(dead1);
        b.br(dead2);
        b.switch_to(dead2);
        b.ret(None);
        b.finish();
        let dt = DomTree::compute(m.function(f));
        assert!(!dt.is_reachable(dead1) && !dt.is_reachable(dead2));
        assert_eq!(dt.idom(dead1), None);
        assert_eq!(dt.idom(dead2), None);
        assert!(!dt.dominates(dead1, BlockId(0)));
        assert!(!dt.dominates(dead1, dead2), "dead blocks dominate nothing");
        assert_eq!(dt.reverse_postorder(), &[BlockId(0)]);
    }
}
