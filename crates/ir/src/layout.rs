//! Per-target data layout.
//!
//! Native Offloader's key observation (§3.2 of the paper) is that C fixes no
//! memory layout across platforms: the same `struct Move { char from, to;
//! double score; }` occupies 10 bytes on IA32 (doubles align to 4) but 16 on
//! ARM EABI (doubles align to 8), and pointer fields are 4 bytes on a 32-bit
//! mobile device but 8 on a 64-bit server. The *memory unifier* realigns the
//! server layout to the mobile layout so both sides read the same bytes at
//! the same unified virtual address.
//!
//! [`DataLayout`] captures the ABI knobs that matter for that story: pointer
//! width, the alignment of 8-byte scalars, and endianness. Struct layouts
//! (field offsets, size, alignment) are computed with ordinary C rules.

use std::collections::HashMap;
use std::fmt;

use crate::module::{Module, StructId};
use crate::types::Type;

/// Byte order of a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Endian {
    /// Least-significant byte first (ARM and x86 in the paper's evaluation).
    #[default]
    Little,
    /// Most-significant byte first. Never hit in the paper's eval; exercised
    /// by this repo's synthetic big-endian server profile.
    Big,
}

/// Named ABI presets for the devices this reproduction simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetAbi {
    /// 32-bit ARM-style mobile ABI: 4-byte pointers, 8-byte scalars align
    /// to 8, little-endian. This is the *unified standard* layout, because
    /// the mobile device is the default executor (§3.2).
    MobileArm32,
    /// 64-bit x86-style server ABI: 8-byte pointers, 8-byte alignment,
    /// little-endian.
    ServerX8664,
    /// 32-bit IA32-style ABI: 4-byte pointers but 8-byte scalars align to
    /// only 4 — the packing that produces the Fig. 4 mismatch.
    ServerIa32,
    /// Synthetic big-endian 64-bit server used to exercise the endianness
    /// translation pass, which the paper's (LE, LE) evaluation never runs.
    ServerBigEndian64,
}

/// The widest pointer width, in bits, across every [`TargetAbi`] preset.
/// A `ptrtoint` destination (or `inttoptr` source) narrower than this
/// cannot round-trip an address on every device the module may run on —
/// the §3.2 UVA hazard the verifier and `OFF010` lint guard against.
pub const WIDEST_TARGET_ADDR_BITS: u32 = 64;

impl TargetAbi {
    /// All ABI presets.
    pub const ALL: [TargetAbi; 4] = [
        TargetAbi::MobileArm32,
        TargetAbi::ServerX8664,
        TargetAbi::ServerIa32,
        TargetAbi::ServerBigEndian64,
    ];

    /// The concrete layout rules of this ABI.
    pub fn data_layout(self) -> DataLayout {
        match self {
            TargetAbi::MobileArm32 => DataLayout {
                abi: self,
                ptr_bytes: 4,
                wide_scalar_align: 8,
                endian: Endian::Little,
            },
            TargetAbi::ServerX8664 => DataLayout {
                abi: self,
                ptr_bytes: 8,
                wide_scalar_align: 8,
                endian: Endian::Little,
            },
            TargetAbi::ServerIa32 => DataLayout {
                abi: self,
                ptr_bytes: 4,
                wide_scalar_align: 4,
                endian: Endian::Little,
            },
            TargetAbi::ServerBigEndian64 => DataLayout {
                abi: self,
                ptr_bytes: 8,
                wide_scalar_align: 8,
                endian: Endian::Big,
            },
        }
    }
}

impl fmt::Display for TargetAbi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TargetAbi::MobileArm32 => "arm32-mobile",
            TargetAbi::ServerX8664 => "x86_64-server",
            TargetAbi::ServerIa32 => "ia32-server",
            TargetAbi::ServerBigEndian64 => "be64-server",
        };
        f.write_str(s)
    }
}

/// Concrete layout rules for one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataLayout {
    /// Which ABI these rules came from.
    pub abi: TargetAbi,
    /// Pointer size in bytes (4 or 8).
    pub ptr_bytes: u64,
    /// Alignment of `i64` and `f64` (8 on ARM EABI / x86-64, 4 on IA32).
    pub wide_scalar_align: u64,
    /// Byte order.
    pub endian: Endian,
}

/// The computed layout of one struct under one [`DataLayout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// Byte offset of each field, in declaration order.
    pub offsets: Vec<u64>,
    /// Total size including trailing padding.
    pub size: u64,
    /// Alignment of the whole struct.
    pub align: u64,
}

impl StructLayout {
    /// Total bytes of padding (internal + trailing) in the struct.
    pub fn padding(&self, field_sizes: &[u64]) -> u64 {
        self.size - field_sizes.iter().sum::<u64>()
    }
}

impl DataLayout {
    /// Size of a type in bytes.
    ///
    /// # Panics
    ///
    /// Panics on [`Type::Void`], which has no size.
    pub fn size_of(&self, ty: &Type, module: &Module) -> u64 {
        match ty {
            Type::Void => panic!("void has no size"),
            Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 => 4,
            Type::I64 | Type::F64 => 8,
            Type::Ptr(_) | Type::Func(_) => self.ptr_bytes,
            Type::Array(elem, len) => self.size_of(elem, module) * *len as u64,
            Type::Struct(id) => self.struct_layout(*id, module).size,
        }
    }

    /// Alignment of a type in bytes.
    ///
    /// # Panics
    ///
    /// Panics on [`Type::Void`].
    pub fn align_of(&self, ty: &Type, module: &Module) -> u64 {
        match ty {
            Type::Void => panic!("void has no alignment"),
            Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 => 4,
            Type::I64 | Type::F64 => self.wide_scalar_align,
            Type::Ptr(_) | Type::Func(_) => self.ptr_bytes,
            Type::Array(elem, _) => self.align_of(elem, module),
            Type::Struct(id) => self.struct_layout(*id, module).align,
        }
    }

    /// Layout of a struct under this ABI: standard C rules (each field at
    /// the next multiple of its alignment; struct size rounded up to the
    /// struct alignment).
    pub fn struct_layout(&self, id: StructId, module: &Module) -> StructLayout {
        let def = module.struct_def(id);
        let mut offsets = Vec::with_capacity(def.fields.len());
        let mut offset = 0u64;
        let mut align = 1u64;
        for field in &def.fields {
            let fa = self.align_of(field, module);
            let fs = self.size_of(field, module);
            offset = round_up(offset, fa);
            offsets.push(offset);
            offset += fs;
            align = align.max(fa);
        }
        StructLayout {
            offsets,
            size: round_up(offset.max(1), align),
            align,
        }
    }

    /// Compute layouts for every struct in the module at once.
    pub fn all_struct_layouts(&self, module: &Module) -> HashMap<StructId, StructLayout> {
        module
            .struct_ids()
            .map(|id| (id, self.struct_layout(id, module)))
            .collect()
    }
}

fn round_up(value: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two() || align == 1);
    value.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;
    use crate::types::StructDef;

    #[test]
    fn widest_addr_bits_covers_every_preset() {
        let widest = TargetAbi::ALL
            .iter()
            .map(|abi| abi.data_layout().ptr_bytes * 8)
            .max()
            .unwrap();
        assert_eq!(widest as u32, WIDEST_TARGET_ADDR_BITS);
    }

    /// The `Move` struct of the paper's Fig. 3/4:
    /// `struct { char from, to; double score; }`.
    fn move_struct(module: &mut Module) -> StructId {
        module.define_struct(StructDef {
            name: "Move".into(),
            fields: vec![Type::I8, Type::I8, Type::F64],
        })
    }

    #[test]
    fn fig4_move_differs_between_ia32_and_arm() {
        let mut m = Module::new("t");
        let id = move_struct(&mut m);
        let arm = TargetAbi::MobileArm32.data_layout().struct_layout(id, &m);
        let ia32 = TargetAbi::ServerIa32.data_layout().struct_layout(id, &m);
        // ARM pads `score` to offset 8 (Fig. 4 right), IA32 packs it at 4.
        assert_eq!(arm.offsets, vec![0, 1, 8]);
        assert_eq!(arm.size, 16);
        assert_eq!(ia32.offsets, vec![0, 1, 4]);
        assert_eq!(ia32.size, 12);
        assert_ne!(arm, ia32, "the Fig. 4 mismatch must exist");
    }

    #[test]
    fn pointer_fields_differ_between_32_and_64_bit() {
        let mut m = Module::new("t");
        let id = m.define_struct(StructDef {
            name: "Node".into(),
            fields: vec![Type::I32, Type::I32.ptr_to()],
        });
        let mobile = TargetAbi::MobileArm32.data_layout().struct_layout(id, &m);
        let server = TargetAbi::ServerX8664.data_layout().struct_layout(id, &m);
        assert_eq!(mobile.size, 8);
        assert_eq!(server.size, 16);
    }

    #[test]
    fn nested_struct_layout() {
        let mut m = Module::new("t");
        let inner = move_struct(&mut m);
        let outer = m.define_struct(StructDef {
            name: "Outer".into(),
            fields: vec![Type::I8, Type::Struct(inner)],
        });
        let l = TargetAbi::MobileArm32.data_layout();
        let lo = l.struct_layout(outer, &m);
        assert_eq!(lo.offsets, vec![0, 8]);
        assert_eq!(lo.size, 24);
        assert_eq!(lo.align, 8);
    }

    #[test]
    fn array_size_and_align() {
        let m = Module::new("t");
        let l = TargetAbi::MobileArm32.data_layout();
        let a = Type::I16.array_of(5);
        assert_eq!(l.size_of(&a, &m), 10);
        assert_eq!(l.align_of(&a, &m), 2);
    }

    #[test]
    fn empty_struct_has_nonzero_size() {
        let mut m = Module::new("t");
        let id = m.define_struct(StructDef {
            name: "E".into(),
            fields: vec![],
        });
        let l = TargetAbi::MobileArm32.data_layout().struct_layout(id, &m);
        assert_eq!(l.size, 1);
    }

    #[test]
    fn padding_accounting() {
        let mut m = Module::new("t");
        let id = move_struct(&mut m);
        let l = TargetAbi::MobileArm32.data_layout().struct_layout(id, &m);
        assert_eq!(l.padding(&[1, 1, 8]), 6); // Fig. 4: 6 bytes of padding
    }
}
