//! Integration: the §6 bandwidth-aware prediction extension (NWSLite-
//! style observed-throughput estimation) and the Cloudlet preset.

use native_offloader::{Offloader, SessionConfig, WorkloadInput};
use offload_net::Link;

/// A think-like program: the target runs once per move, so later
/// invocations can learn from earlier transfers.
const MULTI: &str = r#"
int table[30000];

long think(int n) {
    int r; int i;
    long acc = 0;
    for (r = 0; r < 30; r++)
        for (i = 0; i < n; i++)
            acc += table[i % 30000] ^ (r * 31 + i);
    return acc;
}

int main() {
    int n; int moves; int m;
    scanf("%d %d", &n, &moves);
    int i;
    for (i = 0; i < 30000; i++) table[i] = (i * 2654435761) % 1000;
    long total = 0;
    for (m = 0; m < moves; m++) {
        total = (total + think(n)) % 1000000007;
        int dummy;
        scanf("%d", &dummy);
    }
    printf("line %d\n", (int)total);
    return 0;
}
"#;

fn compiled() -> native_offloader::CompiledApp {
    Offloader::new()
        .compile_source(
            MULTI,
            "multi",
            &WorkloadInput::from_stdin("9000 3\n1\n2\n3\n"),
        )
        .unwrap()
}

fn eval_input() -> WorkloadInput {
    WorkloadInput::from_stdin("12000 3\n1\n2\n3\n")
}

/// A nominally-fast but extremely high-latency link (a satellite hop):
/// the nominal-bandwidth estimator keeps offloading; the adaptive one
/// observes the terrible effective throughput and backs off.
fn satellite() -> Link {
    Link::custom("satellite", 500_000_000, 0.250)
}

#[test]
fn adaptive_estimator_learns_to_refuse_on_a_deceptive_link() {
    let app = compiled();
    assert!(
        app.plan.task_by_name("think").is_some(),
        "{:#?}",
        app.plan.estimates
    );
    let input = eval_input();

    let naive = app
        .run_offloaded(&input, &SessionConfig::with_link(satellite()))
        .unwrap();
    let mut cfg = SessionConfig::with_link(satellite());
    cfg.adaptive_bandwidth = true;
    let adaptive = app.run_offloaded(&input, &cfg).unwrap();

    assert_eq!(naive.console, adaptive.console, "behaviour must not change");
    assert_eq!(
        naive.offloads_performed, 3,
        "nominal 500 Mbps looks great on paper"
    );
    assert!(
        adaptive.offloads_performed < naive.offloads_performed,
        "the adaptive estimator must back off after observing the latency: {} vs {}",
        adaptive.offloads_performed,
        naive.offloads_performed
    );
    assert!(
        adaptive.total_seconds < naive.total_seconds,
        "backing off must pay: adaptive {:.2} ms vs naive {:.2} ms",
        adaptive.total_seconds * 1e3,
        naive.total_seconds * 1e3
    );
}

#[test]
fn adaptive_estimator_keeps_offloading_on_honest_links() {
    let app = compiled();
    let input = eval_input();
    let plain = app
        .run_offloaded(&input, &SessionConfig::fast_network())
        .unwrap();
    let mut cfg = SessionConfig::fast_network();
    cfg.adaptive_bandwidth = true;
    let adaptive = app.run_offloaded(&input, &cfg).unwrap();
    assert_eq!(plain.console, adaptive.console);
    assert_eq!(
        adaptive.offloads_performed, plain.offloads_performed,
        "a truthful link must not trigger false refusals"
    );
}

#[test]
fn cloudlet_beats_the_distant_fast_network_for_chatty_workloads() {
    // §6: "Cloudlet proposes the use of a nearby server instead of a cloud
    // server that has higher latency and lower bandwidth. With Cloudlet,
    // Native Offloader can reduce the communication latency." The
    // remote-input program gobmk pays per-round-trip latency, so the
    // nearby server wins.
    let w = offload_workloads::by_short_name("gobmk").unwrap();
    let app = w.compile().unwrap();
    let input = (w.eval_input)();
    let wan = app
        .run_offloaded(&input, &SessionConfig::fast_network())
        .unwrap();
    let nearby = app
        .run_offloaded(&input, &SessionConfig::cloudlet())
        .unwrap();
    assert_eq!(wan.console, nearby.console);
    assert!(
        nearby.total_seconds < wan.total_seconds,
        "cloudlet {:.2} ms vs fast WAN {:.2} ms",
        nearby.total_seconds * 1e3,
        wan.total_seconds * 1e3
    );
    assert!(nearby.breakdown.remote_io_s < wan.breakdown.remote_io_s);
}
