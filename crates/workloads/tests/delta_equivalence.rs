//! Sub-page delta write-back is an *accounting* optimization: results
//! must be byte-identical to full-page write-back. Every miniature runs
//! under both `delta_writeback` settings with the offload forced; the
//! console, exit code and all protocol counters must match exactly, and
//! only the wire bytes may differ.
//!
//! Page-level byte identity of the final mobile memory image is asserted
//! *inside* the session on every run of this suite: finalization
//! re-reads each written-back mobile page and `debug_assert_eq!`s it
//! against the server page (delta and full-page paths ship the very same
//! server bytes), so a delta-apply divergence fails these dev-profile
//! tests before any report comparison does.

use native_offloader::SessionConfig;
use offload_obs::{EventKind, TraceCollector};

fn forced(mut cfg: SessionConfig, delta: bool, compress: bool) -> SessionConfig {
    cfg.dynamic_estimation = false;
    cfg.delta_writeback = delta;
    cfg.compress = compress;
    cfg
}

#[test]
fn delta_writeback_is_byte_identical_across_the_suite() {
    let mut best_saving = (0.0f64, String::new());
    for w in offload_workloads::all() {
        let app = w.compile().expect("compiles");
        let input = (w.eval_input)();
        for compress in [false, true] {
            let full = app
                .run_offloaded(
                    &input,
                    &forced(SessionConfig::fast_network(), false, compress),
                )
                .expect("full-page run");
            let delta = app
                .run_offloaded(
                    &input,
                    &forced(SessionConfig::fast_network(), true, compress),
                )
                .expect("delta run");

            // Results and protocol counters must be identical; only the
            // wire bytes (and times derived from them) may move.
            let tag = format!("{} (compress={compress})", w.name);
            assert_eq!(delta.console, full.console, "{tag}: console diverged");
            assert_eq!(delta.exit_code, full.exit_code, "{tag}: exit diverged");
            assert_eq!(
                delta.offloads_performed, full.offloads_performed,
                "{tag}: offload count diverged"
            );
            assert_eq!(
                delta.dirty_pages_written_back, full.dirty_pages_written_back,
                "{tag}: dirty page count diverged"
            );
            assert_eq!(
                delta.demand_page_fetches, full.demand_page_fetches,
                "{tag}: demand fetch count diverged"
            );
            assert_eq!(
                delta.prefetched_pages, full.prefetched_pages,
                "{tag}: prefetch count diverged"
            );
            assert_eq!(
                delta.upload.raw_bytes, full.upload.raw_bytes,
                "{tag}: raw (logical) upload bytes must not change"
            );
            assert!(
                delta.upload.wire_bytes <= full.upload.wire_bytes,
                "{tag}: sparse upload {} > full-page upload {} (per-message fallback broken)",
                delta.upload.wire_bytes,
                full.upload.wire_bytes
            );
            assert_eq!(
                delta.download.raw_bytes, full.download.raw_bytes,
                "{tag}: raw (logical) download bytes must not change"
            );

            if compress {
                // Against compressed full pages the delta message can lose
                // by a hair (run headers break LZ matches), never by much.
                assert!(
                    delta.download.wire_bytes as f64
                        <= full.download.wire_bytes as f64 * 1.02 + 256.0,
                    "{tag}: delta wire {} far above full-page wire {}",
                    delta.download.wire_bytes,
                    full.download.wire_bytes
                );
            } else {
                // Uncompressed, the per-message full-page fallback makes
                // the delta message never larger.
                assert!(
                    delta.download.wire_bytes <= full.download.wire_bytes,
                    "{tag}: delta wire {} > full-page wire {}",
                    delta.download.wire_bytes,
                    full.download.wire_bytes
                );
                if full.traffic_wire_mb() > 0.0 {
                    let saving = 1.0 - delta.traffic_wire_mb() / full.traffic_wire_mb();
                    if saving > best_saving.0 {
                        best_saving = (saving, w.name.to_string());
                    }
                }
            }
        }
    }
    // The acceptance bar: at least one workload saves >= 30% of total
    // wire traffic from sub-page deltas alone.
    assert!(
        best_saving.0 >= 0.30,
        "no workload saved >= 30% wire traffic (best: {:.1}% on {})",
        best_saving.0 * 100.0,
        best_saving.1
    );
}

#[test]
fn wire_bytes_saved_metric_matches_the_event_stream() {
    // The `wire_bytes_saved` counter must equal the sum over
    // `DeltaWriteBack` events of `full - delta`, and the existing
    // trace-derived reconciliation must still hold with delta on (the
    // suite-wide check lives in trace_reconcile.rs; here we pin the new
    // metric's arithmetic on one delta-heavy workload).
    let input = offload_workloads::chess::input(9, 2);
    let app = native_offloader::Offloader::new()
        .compile_source(offload_workloads::chess::SOURCE, "chess", &input)
        .expect("chess compiles");
    let cfg = forced(SessionConfig::fast_network(), true, true);
    let mut obs = TraceCollector::with_capacity(1 << 20);
    let rep = app
        .run_offloaded_traced(&input, &cfg, &mut obs)
        .expect("runs");
    assert_eq!(obs.dropped(), 0, "ring must hold the whole run");

    let mut saved = 0u64;
    let mut delta_events = 0u64;
    for r in obs.records() {
        if let EventKind::DeltaWriteBack {
            full_bytes,
            delta_bytes,
            ..
        } = r.kind
        {
            saved += full_bytes.saturating_sub(delta_bytes);
            delta_events += 1;
        }
    }
    assert!(delta_events > 0, "chess must exercise the delta path");
    let m = obs.metrics();
    assert_eq!(m.counter("delta_writebacks"), delta_events);
    assert_eq!(m.counter("wire_bytes_saved"), saved);
    assert!(saved > 0, "delta write-back saved nothing on chess");

    native_offloader::runtime::derive::check_reconciliation(&obs.records(), &rep, &cfg)
        .expect("trace-derived report still reconciles with delta on");
}
