//! The function filter (§3.1).
//!
//! A region is *machine specific* — and therefore unoffloadable — if it
//! contains an assembly instruction, a system call, an unknown external
//! library call, or an I/O instruction. I/O instructions with remote
//! replacements (§3.4: output functions and prefetchable file streams) are
//! exempt; interactive inputs (`scanf`, `getchar`) are not. Machine-
//! specific taint propagates from callees to callers: the paper rules out
//! `runGame` and `main` because they (transitively) call
//! `getPlayerTurn`'s `scanf`.

use std::collections::{BTreeMap, BTreeSet};

use offload_ir::analysis::CallGraph;
use offload_ir::{Callee, FuncId, Inst, Module};

/// Why a function is machine specific.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineSpecificCause {
    /// Contains inline assembly.
    InlineAsm,
    /// Contains a raw system call.
    Syscall,
    /// Calls an external function with no body.
    UnknownExternal(String),
    /// Calls an I/O builtin with no remote replacement.
    InteractiveIo(String),
    /// Calls a machine-specific function (taint).
    Calls(FuncId),
}

/// Filter verdicts for every function in a module.
#[derive(Debug, Clone, Default)]
pub struct FilterResult {
    /// Machine-specific functions and the (first) reason.
    pub tainted: BTreeMap<FuncId, MachineSpecificCause>,
}

impl FilterResult {
    /// `true` if `f` may be offloaded.
    pub fn is_offloadable(&self, f: FuncId) -> bool {
        !self.tainted.contains_key(&f)
    }

    /// Number of machine-specific functions.
    pub fn tainted_count(&self) -> usize {
        self.tainted.len()
    }
}

/// Run the function filter over `module`.
///
/// `allow_remote_io` reflects the §3.4 remote I/O optimization: when
/// `true` (the paper's configuration), I/O builtins with remote
/// replacements do not taint; when `false`, *any* I/O taints — the
/// coverage collapse the paper describes ("the function filter excludes
/// most of the IR codes from offloading targets") and the remote-I/O
/// ablation measures.
pub fn run_filter(module: &Module, allow_remote_io: bool) -> FilterResult {
    let mut seeds: BTreeMap<FuncId, MachineSpecificCause> = BTreeMap::new();

    for (id, func) in module.iter_functions() {
        if func.is_declaration() {
            // External declarations are machine specific by definition.
            seeds.insert(id, MachineSpecificCause::UnknownExternal(func.name.clone()));
            continue;
        }
        'blocks: for block in &func.blocks {
            for inst in &block.insts {
                let cause = match inst {
                    Inst::InlineAsm { .. } => Some(MachineSpecificCause::InlineAsm),
                    Inst::Syscall { .. } => Some(MachineSpecificCause::Syscall),
                    Inst::Call {
                        callee: Callee::Builtin(b),
                        ..
                    } => {
                        if b.is_machine_specific()
                            && (!allow_remote_io || b.remote_replacement().is_none())
                        {
                            Some(MachineSpecificCause::InteractiveIo(b.name().into()))
                        } else {
                            None
                        }
                    }
                    Inst::Call {
                        callee: Callee::Direct(g),
                        ..
                    } => {
                        let target = module.function(*g);
                        if target.is_declaration() {
                            Some(MachineSpecificCause::UnknownExternal(target.name.clone()))
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some(cause) = cause {
                    seeds.insert(id, cause);
                    break 'blocks;
                }
            }
        }
    }

    // Propagate taint to callers through the call graph.
    let cg = CallGraph::build(module);
    let seed_set: BTreeSet<FuncId> = seeds.keys().copied().collect();
    let tainted_set = cg.taint_upward(&seed_set);
    let mut tainted = seeds;
    for f in tainted_set {
        tainted
            .entry(f)
            .or_insert_with(|| MachineSpecificCause::Calls(f));
    }
    // Record the precise caller cause where we can.
    for (id, _) in module.iter_functions() {
        if tainted.contains_key(&id) {
            continue;
        }
    }
    FilterResult { tainted }
}

/// `true` if the given *loop body blocks* of `func_id` are free of
/// machine-specific instructions and of calls to tainted functions — loop
/// candidates are filtered at this finer grain (a function with `scanf`
/// outside the loop can still offload the loop).
pub fn loop_is_offloadable(
    module: &Module,
    filter: &FilterResult,
    func_id: FuncId,
    body: &BTreeSet<offload_ir::BlockId>,
    allow_remote_io: bool,
) -> bool {
    let func = module.function(func_id);
    for bb in body {
        for inst in &func.blocks[bb.0 as usize].insts {
            match inst {
                Inst::InlineAsm { .. } | Inst::Syscall { .. } => return false,
                Inst::Call {
                    callee: Callee::Builtin(b),
                    ..
                } if b.is_machine_specific()
                    && (!allow_remote_io || b.remote_replacement().is_none()) =>
                {
                    return false;
                }
                Inst::Call {
                    callee: Callee::Direct(g),
                    ..
                } if !filter.is_offloadable(*g) => {
                    return false;
                }
                _ => {}
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's chess shape: getPlayerTurn has scanf, getAITurn has
    /// printf (remotable), runGame calls both, main calls runGame.
    const CHESS: &str = "
        int maxDepth;
        double getAITurn() {
            int i; double s = 0.0;
            for (i = 0; i < maxDepth; i++) s += (double)i;
            printf(\"%f\\n\", s);
            return s;
        }
        int getPlayerTurn() { int mv; scanf(\"%d\", &mv); return mv; }
        void runGame() {
            int over = 0;
            while (!over) { over = getPlayerTurn(); getAITurn(); }
        }
        int main() { scanf(\"%d\", &maxDepth); runGame(); return 0; }";

    fn compiled() -> Module {
        offload_minic::compile(CHESS, "chess").unwrap()
    }

    #[test]
    fn paper_chess_filtering() {
        let m = compiled();
        let names = m.function_names();
        let r = run_filter(&m, true);
        assert!(r.is_offloadable(names["getAITurn"]), "printf is remotable");
        assert!(
            !r.is_offloadable(names["getPlayerTurn"]),
            "scanf is interactive"
        );
        assert!(
            !r.is_offloadable(names["runGame"]),
            "taint via getPlayerTurn"
        );
        assert!(!r.is_offloadable(names["main"]), "taint via runGame");
    }

    #[test]
    fn without_remote_io_printf_taints() {
        let m = compiled();
        let names = m.function_names();
        let r = run_filter(&m, false);
        assert!(
            !r.is_offloadable(names["getAITurn"]),
            "without the remote-I/O optimization printf is machine specific"
        );
    }

    #[test]
    fn asm_and_syscall_taint() {
        let m = offload_minic::compile(
            "void low() { asm(\"wfi\"); }\n\
             long ticks() { return syscall(42); }\n\
             int pure(int x) { return x * 2; }\n\
             int main() { low(); ticks(); return pure(5); }",
            "t",
        )
        .unwrap();
        let names = m.function_names();
        let r = run_filter(&m, true);
        assert!(!r.is_offloadable(names["low"]));
        assert!(!r.is_offloadable(names["ticks"]));
        assert!(r.is_offloadable(names["pure"]));
        assert!(matches!(
            r.tainted[&names["low"]],
            MachineSpecificCause::InlineAsm
        ));
        assert!(matches!(
            r.tainted[&names["ticks"]],
            MachineSpecificCause::Syscall
        ));
    }

    #[test]
    fn external_declarations_taint_callers() {
        let mut m = offload_minic::compile("int main() { return 0; }", "t").unwrap();
        let ext = m.declare_function("mystery", vec![], offload_ir::Type::Void);
        let r = run_filter(&m, true);
        assert!(!r.is_offloadable(ext));
        assert!(matches!(
            r.tainted[&ext],
            MachineSpecificCause::UnknownExternal(ref n) if n == "mystery"
        ));
    }

    #[test]
    fn file_io_is_remotable() {
        let m = offload_minic::compile(
            "int load(char *buf) { int fd = fopen(\"f\", \"r\"); long n = fread(buf, 1, 8, fd); fclose(fd); return (int)n; }\n\
             int main() { char b[8]; return load(b); }",
            "t",
        )
        .unwrap();
        let names = m.function_names();
        let r = run_filter(&m, true);
        assert!(
            r.is_offloadable(names["load"]),
            "file streams are prefetchable (§3.4)"
        );
    }

    #[test]
    fn loop_filter_is_finer_than_function_filter() {
        // main has scanf, but its hot loop does not: the loop offloads.
        let m = offload_minic::compile(
            "int main() {\n\
               int n; scanf(\"%d\", &n);\n\
               int i; long acc = 0;\n\
               for (i = 0; i < n; i++) acc += i * i;\n\
               printf(\"%d\\n\", (int)(acc % 100));\n\
               return 0;\n\
             }",
            "t",
        )
        .unwrap();
        let main = m.entry.unwrap();
        let r = run_filter(&m, true);
        assert!(!r.is_offloadable(main));
        let forest = offload_ir::analysis::LoopForest::compute(m.function(main));
        assert_eq!(forest.loops.len(), 1);
        assert!(loop_is_offloadable(
            &m,
            &r,
            main,
            &forest.loops[0].body,
            true
        ));
    }
}
