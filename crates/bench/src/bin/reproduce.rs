//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p offload-bench --bin reproduce -- all
//! cargo run --release -p offload-bench --bin reproduce -- table1
//! cargo run --release -p offload-bench --bin reproduce -- fig6a fig6b
//! cargo run --release -p offload-bench --bin reproduce -- trace gzip --format jsonl
//! cargo run --release -p offload-bench --bin reproduce -- farm --workers 1,2,4,8
//! ```
//!
//! `--quiet` suppresses progress chatter on stderr (figure output on
//! stdout is unaffected).
//!
//! Absolute numbers live on a simulated substrate and will not equal the
//! paper's testbed; the *shapes* (who wins, by what factor, which programs
//! are refused on the slow network) are the reproduction targets. See
//! EXPERIMENTS.md for the side-by-side record.

use native_offloader::{CompileConfig, Offloader, SessionConfig};
use offload_bench::harness::{measure_suite, WorkloadRun};
use offload_bench::{datasets, geomean, render};
use offload_machine::power::PowerState;
use offload_machine::target::TargetSpec;
use offload_obs::log::Logger;
use offload_workloads::chess;

/// Every figure/table selector the default mode accepts.
const FIGURES: &[&str] = &[
    "all",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "calibrate",
];

fn usage() -> String {
    format!(
        "usage: reproduce [--quiet] [<selector>...] | <subcommand> [args]\n\
         \n\
         selectors (default mode; no selector means `all`):\n\
         {}\n\
         \n\
         subcommands:\n\
         \x20 trace <program> [--format jsonl|tree|timeline] [--net slow|fast|ideal]\n\
         \x20     export one traced offload session\n\
         \x20 analyze <program|all> [--no-remote-io] [--json]\n\
         \x20     static offloadability verdicts + OFFxxx diagnostics\n\
         \x20 analyze <program|all> --footprint [--check]\n\
         \x20     mod/ref certificates + measured wire/baseline savings\n\
         \x20 bench [--out FILE] [--check FILE] [--no-micro]\n\
         \x20     protocol sweep + hot-path micro benches (BENCH_pr3.json)\n\
         \x20 farm [--workers N[,N...]] [--repeat R] [--out FILE] [--check-serial-equivalence]\n\
         \x20     concurrent session farm throughput sweep (BENCH_pr4.json)\n\
         \x20 stream [--out FILE] [--check FILE]\n\
         \x20     speculative page streaming: modes x links demand-stall sweep (BENCH_pr5.json)\n\
         \x20 profile <workload|all> [--net slow|fast|both] [--mode offload|stream|both]\n\
         \x20         [--out FILE] [--check FILE] [--diff A.json B.json]\n\
         \x20     critical-path lane attribution + occupancy/queue sparklines (BENCH_pr6.json)\n\
         \x20 evloop [--workers N] [--server-slots N] [--sessions N[,N...]] [--out FILE] [--check FILE]\n\
         \x20     event-driven core: interleaved-session sweep vs thread-per-session (BENCH_pr8.json)",
        FIGURES
            .iter()
            .map(|f| format!("\x20 {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    )
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quiet = args.iter().any(|a| a == "--quiet" || a == "-q");
    args.retain(|a| a != "--quiet" && a != "-q");
    let log = if quiet {
        Logger::quiet()
    } else {
        Logger::default()
    };

    if args
        .iter()
        .any(|a| a == "help" || a == "--help" || a == "-h")
    {
        println!("{}", usage());
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "trace") {
        trace(&args[pos + 1..], &log);
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "analyze") {
        analyze(&args[pos + 1..], &log);
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "bench") {
        bench(&args[pos + 1..], &log);
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "farm") {
        farm(&args[pos + 1..], &log);
        return;
    }
    // `profile` before `stream`: `profile <w> --mode stream` carries the
    // literal token "stream", which must not hijack the dispatch.
    if let Some(pos) = args.iter().position(|a| a == "profile") {
        profile(&args[pos + 1..], &log);
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "stream") {
        stream(&args[pos + 1..], &log);
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "evloop") {
        evloop(&args[pos + 1..], &log);
        return;
    }

    // Default mode: every remaining argument must be a known selector —
    // a typo must fail loudly, not silently produce nothing.
    for a in &args {
        if !FIGURES.contains(&a.as_str()) {
            eprintln!("reproduce: unknown argument `{a}`\n\n{}", usage());
            std::process::exit(2);
        }
    }

    let wants = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    let mut suite: Option<Vec<WorkloadRun>> = None;
    let suite_ref = |suite: &mut Option<Vec<WorkloadRun>>| {
        if suite.is_none() {
            log.info("[measuring the 17-program suite: local/slow/fast/ideal ...]");
            *suite = Some(measure_suite());
        }
    };

    if wants("table1") {
        table1();
    }
    if wants("table2") {
        table2();
    }
    if wants("table3") {
        table3();
    }
    if wants("table4") {
        suite_ref(&mut suite);
        table4(suite.as_ref().expect("measured"));
    }
    if wants("table5") {
        table5();
    }
    if wants("fig6a") {
        suite_ref(&mut suite);
        fig6a(suite.as_ref().expect("measured"));
    }
    if wants("fig6b") {
        suite_ref(&mut suite);
        fig6b(suite.as_ref().expect("measured"));
    }
    if wants("fig7") {
        suite_ref(&mut suite);
        fig7(suite.as_ref().expect("measured"));
    }
    if wants("fig8") {
        fig8();
    }
    if args.iter().any(|a| a == "calibrate") {
        suite_ref(&mut suite);
        calibrate(suite.as_ref().expect("measured"));
    }
}

/// `trace <program> [--format jsonl|tree|timeline] [--net slow|fast|ideal]`:
/// compile and run one workload with the [`offload_obs::TraceCollector`]
/// attached, then export the event stream. `jsonl` is Chrome
/// `trace_event` format (load in `chrome://tracing` / Perfetto); `tree`
/// and `timeline` are human renderings. The offload is forced (dynamic
/// estimation off) so the trace always shows a full session.
fn trace(rest: &[String], log: &Logger) {
    use offload_obs::export::{chrome_trace_jsonl, render_timeline, render_tree};
    use offload_obs::TraceCollector;

    let mut program: Option<&str> = None;
    let mut format = "jsonl";
    let mut net = "fast";
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--format" if i + 1 < rest.len() => {
                format = &rest[i + 1];
                i += 2;
            }
            "--net" if i + 1 < rest.len() => {
                net = &rest[i + 1];
                i += 2;
            }
            arg if !arg.starts_with('-') && program.is_none() => {
                program = Some(arg);
                i += 1;
            }
            arg => {
                eprintln!("trace: unexpected argument `{arg}`");
                std::process::exit(2);
            }
        }
    }
    let Some(short) = program else {
        eprintln!("usage: reproduce trace <program> [--format jsonl|tree|timeline] [--net slow|fast|ideal]");
        std::process::exit(2);
    };
    let Some(w) = offload_workloads::by_short_name(short) else {
        let known: Vec<&str> = offload_workloads::all().iter().map(|w| w.short).collect();
        eprintln!(
            "trace: unknown program `{short}` (one of: {})",
            known.join(", ")
        );
        std::process::exit(2);
    };
    let mut cfg = match net {
        "slow" => SessionConfig::slow_network(),
        "fast" => SessionConfig::fast_network(),
        "ideal" => SessionConfig::ideal_network(),
        other => {
            eprintln!("trace: unknown network `{other}` (slow, fast or ideal)");
            std::process::exit(2);
        }
    };
    cfg.dynamic_estimation = false; // always show a full offload session

    log.info(&format!(
        "[tracing {}: compile + offloaded run on the {net} network]",
        w.name
    ));
    let mut obs = TraceCollector::new();
    let app = Offloader::new()
        .compile_source_traced(w.source, w.name, &(w.profile_input)(), &mut obs)
        .expect("compiles");
    let rep = app
        .run_offloaded_traced(&(w.eval_input)(), &cfg, &mut obs)
        .expect("runs");
    let records = obs.records();
    match format {
        "jsonl" => print!("{}", chrome_trace_jsonl(&records)),
        "tree" => print!("{}", render_tree(&records)),
        "timeline" => print!("{}", render_timeline(&records, 100)),
        other => {
            eprintln!("trace: unknown format `{other}` (jsonl, tree or timeline)");
            std::process::exit(2);
        }
    }
    log.info(&format!(
        "[{} events ({} dropped); simulated total {:.2} ms, {} offloads, {} demand faults]",
        records.len(),
        obs.dropped(),
        rep.total_seconds * 1e3,
        rep.offloads_performed,
        rep.demand_page_fetches,
    ));
}

const ANALYZE_USAGE: &str =
    "usage: reproduce analyze <program|chess|all> [--no-remote-io] [--json]\n\
     \x20      reproduce analyze <program|chess|all> --footprint [--check]";

/// `analyze <program|all> [--no-remote-io] [--json]`: run the
/// static-analysis layer — points-to, portability lints, function filter —
/// and print per-function offloadability verdicts with reason chains plus
/// every `OFFxxx` diagnostic, rustc-style (`--json` for the
/// machine-readable form). `chess` analyzes the paper's running example;
/// `all` sweeps the 17-program suite. Exits nonzero if any program raises
/// an error-severity diagnostic (the CI smoke gate).
///
/// `--footprint` instead reports the interprocedural mod/ref certificates:
/// certified pages, proven-read-only fractions, and the measured wire and
/// baseline-snapshot savings from a certified-vs-baseline run pair.
/// `--check` turns the report into a gate: exit nonzero unless every
/// certified run is oracle-clean and byte-identical to its baseline.
fn analyze(rest: &[String], log: &Logger) {
    let mut program: Option<&str> = None;
    let mut allow_remote_io = true;
    let mut json = false;
    let mut footprint = false;
    let mut check = false;
    for arg in rest {
        match arg.as_str() {
            "--no-remote-io" => allow_remote_io = false,
            "--json" => json = true,
            "--footprint" => footprint = true,
            "--check" => check = true,
            a if !a.starts_with('-') && program.is_none() => program = Some(a),
            a => {
                eprintln!("analyze: unexpected argument `{a}`\n{ANALYZE_USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(which) = program else {
        eprintln!("{ANALYZE_USAGE}");
        std::process::exit(2);
    };
    if check && !footprint {
        eprintln!("analyze: `--check` requires `--footprint`\n{ANALYZE_USAGE}");
        std::process::exit(2);
    }
    if json && footprint {
        eprintln!("analyze: `--json` and `--footprint` are mutually exclusive\n{ANALYZE_USAGE}");
        std::process::exit(2);
    }

    let mut names: Vec<&str> = Vec::new();
    if which == "chess" || which == "all" {
        names.push("chess");
    }
    if which == "all" {
        for w in offload_workloads::all() {
            names.push(w.short);
        }
    } else if which != "chess" {
        let Some(w) = offload_workloads::by_short_name(which) else {
            let known: Vec<&str> = offload_workloads::all().iter().map(|w| w.short).collect();
            eprintln!(
                "analyze: unknown program `{which}` (chess, all, or one of: {})",
                known.join(", ")
            );
            std::process::exit(2);
        };
        names.push(w.short);
    }

    if footprint {
        analyze_footprint(&names, check, log);
        return;
    }

    let mut errors = 0usize;
    for short in names {
        let (name, source) = if short == "chess" {
            ("chess", chess::SOURCE)
        } else {
            let w = offload_workloads::by_short_name(short).expect("validated above");
            (w.name, w.source)
        };
        log.info(&format!("[analyzing {name}]"));
        let report = match native_offloader::analyze_source(source, name, allow_remote_io) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("analyze: {name}: {e}");
                std::process::exit(1);
            }
        };
        if json {
            print!("{}", report.render_json());
        } else {
            print!("{}", report.render());
            println!();
        }
        if report.has_errors() {
            errors += 1;
        }
    }
    if errors > 0 {
        eprintln!("analyze: {errors} program(s) raised error-severity diagnostics");
        std::process::exit(1);
    }
}

/// The `--footprint` report/gate behind [`analyze`]: compile each program,
/// print its certificate summary, then run it offloaded twice — baseline
/// and certificate-consuming — on the fast link with dynamic estimation
/// off, and report the measured savings. With `check`, any oracle trap,
/// result divergence, or upload growth is fatal.
fn analyze_footprint(names: &[&str], check: bool, log: &Logger) {
    println!(
        "{:<14} {:>5} {:>7} {:>8} {:>8} {:>8} {:>9} {:>8} {:>7}",
        "program",
        "tasks",
        "precise",
        "rd_pages",
        "wr_pages",
        "ro_pages",
        "ro_frac",
        "saved_B",
        "skipped"
    );
    let mut failures = 0usize;
    let mut with_savings = 0usize;
    for short in names {
        let (name, source, input) = if *short == "chess" {
            ("chess", chess::SOURCE, chess::input(9, 2))
        } else {
            let w = offload_workloads::by_short_name(short).expect("validated by caller");
            (w.name, w.source, (w.eval_input)())
        };
        log.info(&format!("[certifying {name}]"));
        let app = match Offloader::new().compile_source(source, name, &input) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("analyze: {name}: {e}");
                std::process::exit(1);
            }
        };
        let certs = &app.plan.certificates;
        let precise = certs.iter().filter(|c| c.is_precise()).count();
        let rd: usize = certs.iter().map(|c| c.read.pages().len()).sum();
        let wr: usize = certs.iter().map(|c| c.write.pages().len()).sum();
        let ro: usize = certs.iter().map(|c| c.proven_readonly.len()).sum();
        let ro_frac = if rd > 0 {
            100.0 * ro as f64 / rd as f64
        } else {
            0.0
        };

        // Fault-heavy pair: force the offload, no prefetch, so the oracle
        // sees every page crossing.
        let mut base_cfg = SessionConfig::fast_network();
        base_cfg.dynamic_estimation = false;
        base_cfg.prefetch = false;
        let mut cert_cfg = base_cfg.clone();
        cert_cfg.certificates = true;
        let base = app.run_offloaded(&input, &base_cfg);
        let cert = app.run_offloaded(&input, &cert_cfg);
        let (saved, skipped, ok) = match (&base, &cert) {
            (Ok(b), Ok(c)) => {
                let identical = c.console == b.console && c.exit_code == b.exit_code;
                let saved = b.upload.wire_bytes as i64 - c.upload.wire_bytes as i64;
                (saved, c.baseline_snapshots_skipped, identical && saved >= 0)
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("analyze: {name}: run failed: {e}");
                (0, 0, false)
            }
        };
        println!(
            "{name:<14} {:>5} {precise:>7} {rd:>8} {wr:>8} {ro:>8} {ro_frac:>8.1}% {saved:>8} {skipped:>7}{}",
            app.plan.tasks.len(),
            if ok { "" } else { "  FAIL" },
        );
        if !ok {
            failures += 1;
        }
        if saved > 0 || skipped > 0 {
            with_savings += 1;
        }
    }
    println!(
        "\n{} program(s) with measurable certificate savings, {failures} failure(s)",
        with_savings
    );
    if check && failures > 0 {
        eprintln!("analyze: --check failed: {failures} program(s) diverged or grew");
        std::process::exit(1);
    }
}

/// `bench [--out FILE] [--check FILE] [--no-micro]`: the PR perf-regression
/// harness. Sweeps the 17 miniatures plus the chess example under the four
/// `delta_writeback` × `compress` corners (simulated wire bytes,
/// deterministic), runs the hot-path micro benches against the preserved
/// seed implementations, and prints one table per layer. `--out` writes the
/// JSON artifact (`BENCH_pr3.json`); `--check` re-runs the chess workload
/// and exits nonzero if its delta-mode wire bytes exceed the committed
/// full-page baseline. `--no-micro` skips the wall-clock layer (CI uses
/// this: shared runners make host timing meaningless).
fn bench(rest: &[String], log: &Logger) {
    use offload_bench::perf;

    let mut out_path: Option<&str> = None;
    let mut check_path: Option<&str> = None;
    let mut with_micro = true;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--out" if i + 1 < rest.len() => {
                out_path = Some(&rest[i + 1]);
                i += 2;
            }
            "--check" if i + 1 < rest.len() => {
                check_path = Some(&rest[i + 1]);
                i += 2;
            }
            "--no-micro" => {
                with_micro = false;
                i += 1;
            }
            arg => {
                eprintln!("bench: unexpected argument `{arg}`");
                eprintln!("usage: reproduce bench [--out FILE] [--check FILE] [--no-micro]");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        let committed = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bench: cannot read committed baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        log.info(&format!("[checking delta write-back against {path}]"));
        match perf::check_against(&committed) {
            Ok(msg) => println!("bench check OK: {msg}"),
            Err(msg) => {
                eprintln!("bench check FAILED: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    log.info("[sweeping delta_writeback x compress over 18 workloads ...]");
    let rows = perf::sweep();
    println!("## Full-page vs sub-page delta transfers (simulated wire bytes)");
    println!();
    println!(
        "{:<22} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "workload",
        "pages",
        "up/full",
        "up/delta",
        "dl/full",
        "dl/delta",
        "dl+lz",
        "dl+lz+d",
        "saved%"
    );
    for r in &rows {
        println!(
            "{:<22} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7.1}%",
            r.name,
            r.dirty_pages,
            r.up_full,
            r.up_delta,
            r.full_raw,
            r.delta_raw,
            r.full_lz,
            r.delta_lz,
            r.total_saving_pct * 100.0
        );
    }
    println!();

    let micros = if with_micro {
        println!("## Hot-path micro benches (host wall clock, new vs seed)");
        println!();
        let m = perf::micro_suite();
        println!();
        for b in &m {
            println!(
                "{:<14} {:>10.1} -> {:>8.1} {} ({:.2}x)",
                b.name,
                b.seed,
                b.new,
                b.unit,
                b.speedup()
            );
        }
        println!();
        m
    } else {
        Vec::new()
    };

    if let Some(path) = out_path {
        let json = perf::to_json(&rows, &micros);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("bench: cannot write {path}: {e}");
            std::process::exit(2);
        }
        log.info(&format!("[wrote {path}]"));
    }
}

/// `farm [--workers N[,N...]] [--repeat R] [--out FILE]
/// [--check-serial-equivalence]`: the concurrent session farm. Runs the
/// 18-program suite × R repeats across each worker count, verifies every
/// run is byte-identical to the first, and prints the simulated
/// list-scheduled throughput per count (deterministic, gateable) plus the
/// informational host wall clock. `--out` writes the JSON artifact
/// (`BENCH_pr4.json`); `--check-serial-equivalence` additionally replays
/// every job serially with a fresh collector and exits nonzero on any
/// byte difference in reports or traces (the CI smoke gate).
fn farm(rest: &[String], log: &Logger) {
    use offload_bench::farm as fb;

    let farm_usage = "usage: reproduce farm [--workers N[,N...]] [--repeat R] [--out FILE] [--check-serial-equivalence]";
    let mut workers: Vec<usize> = vec![1, 2, 4, 8];
    let mut repeat = 4usize;
    let mut out_path: Option<&String> = None;
    let mut check_eq = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--workers" if i + 1 < rest.len() => {
                workers = rest[i + 1]
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("farm: bad worker count `{s}`\n{farm_usage}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if workers.is_empty() || workers.contains(&0) {
                    eprintln!("farm: worker counts must be positive\n{farm_usage}");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--repeat" if i + 1 < rest.len() => {
                repeat = rest[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("farm: bad repeat `{}`\n{farm_usage}", rest[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--out" if i + 1 < rest.len() => {
                out_path = Some(&rest[i + 1]);
                i += 2;
            }
            "--check-serial-equivalence" => {
                check_eq = true;
                i += 1;
            }
            arg => {
                eprintln!("farm: unexpected argument `{arg}`\n{farm_usage}");
                std::process::exit(2);
            }
        }
    }

    log.info("[farm] compiling the 18-program suite ...");
    let suite = fb::suite();
    let jobs = fb::make_jobs(&suite, repeat);

    if check_eq {
        let &gate_workers = workers.iter().max().expect("non-empty");
        log.info(&format!(
            "[farm] serial-equivalence gate: {} jobs at {gate_workers} workers vs serial replay ...",
            jobs.len()
        ));
        match native_offloader::runtime::farm::check_serial_equivalence(&jobs, gate_workers) {
            Ok(()) => println!(
                "farm equivalence OK: {} jobs at {gate_workers} workers byte-identical to serial",
                jobs.len()
            ),
            Err(e) => {
                eprintln!("farm equivalence FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    log.info(&format!(
        "[farm] sweeping {} jobs over workers {:?} ...",
        jobs.len(),
        workers
    ));
    let bench = fb::run_bench(&jobs, &workers);
    println!(
        "## Concurrent session farm (18 workloads x {repeat} repeats = {} jobs)",
        bench.jobs
    );
    println!();
    println!(
        "serial suite time {:.3} s simulated; makespan/speedup are deterministic list-scheduled simulated time, host_ms is wall clock (informational)",
        bench.serial_s
    );
    println!();
    println!(
        "{:>7} {:>12} {:>14} {:>8} {:>9}",
        "workers", "makespan_s", "sessions_per_s", "speedup", "host_ms"
    );
    for r in &bench.rows {
        println!(
            "{:>7} {:>12.3} {:>14.2} {:>7.2}x {:>9}",
            r.workers, r.makespan_s, r.sessions_per_s, r.speedup, r.host_ms
        );
    }
    println!();

    // Per-worker utilization + job-queue depth at the widest sweep
    // point, replaying the same deterministic list schedule the
    // makespan rows gate on.
    let &dash_workers = workers.iter().max().expect("non-empty");
    if dash_workers > 1 && !bench.durations.is_empty() {
        use offload_obs::series::{
            job_queue_depth, list_schedule, render_dashboard, worker_utilization,
        };
        let spans = list_schedule(&bench.durations, dash_workers);
        let makespan = fb::list_schedule_makespan(&bench.durations, dash_workers);
        let dt = (makespan / 64.0).max(1e-6);
        let mut series = worker_utilization(&spans, dash_workers, dt);
        series.push(job_queue_depth(&spans, dt));
        println!("worker occupancy at {dash_workers} workers (simulated, list-scheduled):");
        print!("{}", render_dashboard(&series));
        println!();
    }

    if let Some(path) = out_path {
        let json = fb::to_json(&bench);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("farm: cannot write {path}: {e}");
            std::process::exit(2);
        }
        log.info(&format!("[wrote {path}]"));
    }
}

/// `evloop [--workers N] [--server-slots N] [--sessions N[,N...]] [--out
/// FILE] [--check FILE]`: the event-driven session core sweep. Compiles
/// the 18-workload suite into per-session lane scripts, multiplexes them
/// at each concurrency level on one event-driven worker, and races the
/// thread-per-session baseline (same scripts, one OS thread each) up to
/// 10k sessions. `--check` is the CI gate: byte-identity of the evloop
/// engine vs the serial engine on the chess/802.11n cell, a 10k-session
/// throughput floor against the committed artifact, and the
/// zero-steady-state-allocation invariant.
fn evloop(rest: &[String], log: &Logger) {
    use offload_bench::evloop as eb;

    let ev_usage = "usage: reproduce evloop [--workers N] [--server-slots N] [--sessions N[,N...]] [--out FILE] [--check FILE]";
    let mut workers = 1usize;
    let mut server_slots = 16usize;
    let mut sweep: Vec<usize> = eb::SWEEP.to_vec();
    let mut out_path: Option<&String> = None;
    let mut check_path: Option<&String> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--workers" if i + 1 < rest.len() => {
                workers = rest[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("evloop: bad worker count `{}`\n{ev_usage}", rest[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--server-slots" if i + 1 < rest.len() => {
                server_slots = rest[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("evloop: bad slot count `{}`\n{ev_usage}", rest[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--sessions" if i + 1 < rest.len() => {
                sweep = rest[i + 1]
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("evloop: bad session count `{s}`\n{ev_usage}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if sweep.is_empty() || sweep.contains(&0) {
                    eprintln!("evloop: session counts must be positive\n{ev_usage}");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--out" if i + 1 < rest.len() => {
                out_path = Some(&rest[i + 1]);
                i += 2;
            }
            "--check" if i + 1 < rest.len() => {
                check_path = Some(&rest[i + 1]);
                i += 2;
            }
            arg => {
                eprintln!("evloop: unexpected argument `{arg}`\n{ev_usage}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        let committed = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("evloop: cannot read {path}: {e}");
            std::process::exit(2);
        });
        // Gate 1: the event core must not perturb per-session results —
        // byte-identity vs the serial engine on the chess/802.11n cell.
        log.info("[evloop] gate 1: chess/802.11n byte-identity vs serial engine ...");
        let chess_input = chess::input(9, 2);
        let chess_app = Offloader::new()
            .compile_source(chess::SOURCE, "chess", &chess_input)
            .expect("chess compiles");
        let job = native_offloader::runtime::farm::FarmJob {
            app: &chess_app,
            input: chess_input,
            cfg: SessionConfig::slow_network(),
        };
        let cfg = native_offloader::runtime::evloop::EvloopConfig {
            workers,
            server_slots,
        };
        if let Err(e) = native_offloader::runtime::evloop::check_evloop_equivalence(
            std::slice::from_ref(&job),
            &cfg,
        ) {
            eprintln!("evloop equivalence FAILED: {e}");
            std::process::exit(1);
        }
        println!("evloop check OK: chess/802.11n byte-identical to the serial engine");

        // Gate 2: 10k-session throughput floor. Host clocks vary, so the
        // floor is a conservative fraction of the committed rate — it
        // catches an architecture regression (events allocating, a
        // accidental O(n^2) queue), not machine variance.
        log.info("[evloop] gate 2: 10k-session sessions/sec floor ...");
        let committed_rate = eb::parse_committed_rate_at_10k(&committed).unwrap_or_else(|| {
            eprintln!("evloop: {path} has no 10k-session sessions_per_s");
            std::process::exit(2);
        });
        let bench = eb::run_bench(workers, server_slots, &[10_000]);
        let row = &bench.rows[0];
        let floor = committed_rate / 10.0;
        if row.sessions_per_s < floor {
            eprintln!(
                "evloop check FAILED: 10k-session rate {:.1}/s below floor {floor:.1}/s (committed {committed_rate:.1}/s)",
                row.sessions_per_s
            );
            std::process::exit(1);
        }
        // Gate 3: zero steady-state allocations per event.
        if bench.containers_grew {
            eprintln!("evloop check FAILED: event engine grew a pre-sized container");
            std::process::exit(1);
        }
        println!(
            "evloop check OK: 10k sessions at {:.1}/s >= floor {floor:.1}/s ({} events, zero steady-state allocations)",
            row.sessions_per_s, row.events
        );
        return;
    }

    log.info(&format!(
        "[evloop] compiling suite scripts and sweeping sessions {sweep:?} at {workers} worker(s) ..."
    ));
    let bench = eb::run_bench(workers, server_slots, &sweep);
    print!("{}", eb::render_table(&bench));

    if let Some(path) = out_path {
        let json = eb::to_json(&bench);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("evloop: cannot write {path}: {e}");
            std::process::exit(2);
        }
        log.info(&format!("[wrote {path}]"));
    }
}

/// `stream [--out FILE] [--check FILE]`: the speculative page-streaming
/// sweep. Runs all 18 workloads in a fault-heavy configuration on both
/// paper networks under every predictor mode (`off`/`static`/`stride`/
/// `history`), asserts results stay byte-identical, and prints the
/// demand-stall seconds (all simulated, deterministic) plus stream
/// hit/waste bookkeeping per mode. `--out` writes the JSON artifact
/// (`BENCH_pr5.json`); `--check` re-runs the chess workload on the slow
/// network and exits nonzero if its history-mode demand stall regressed
/// past the committed baseline.
fn stream(rest: &[String], log: &Logger) {
    use native_offloader::StreamMode;
    use offload_bench::stream as sb;

    let stream_usage = "usage: reproduce stream [--out FILE] [--check FILE]";
    let mut out_path: Option<&str> = None;
    let mut check_path: Option<&str> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--out" if i + 1 < rest.len() => {
                out_path = Some(&rest[i + 1]);
                i += 2;
            }
            "--check" if i + 1 < rest.len() => {
                check_path = Some(&rest[i + 1]);
                i += 2;
            }
            arg => {
                eprintln!("stream: unexpected argument `{arg}`\n{stream_usage}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        let committed = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("stream: cannot read committed baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        log.info(&format!("[checking chess demand stall against {path}]"));
        match sb::check_against(&committed) {
            Ok(msg) => println!("stream check OK: {msg}"),
            Err(msg) => {
                eprintln!("stream check FAILED: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    log.info("[sweeping predictor modes x links over 18 fault-heavy workloads ...]");
    let rows = sb::sweep();
    println!("## Speculative page streaming (simulated demand-stall seconds)");
    println!();
    println!(
        "{:<22} {:<9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "workload",
        "link",
        "off",
        "static",
        "stride",
        "history",
        "reduced",
        "strm",
        "hits",
        "waste",
        "w.wire"
    );
    for r in &rows {
        let stall = |m: StreamMode| r.mode(m).map_or(0.0, |x| x.stall_s);
        let hist = r.mode(StreamMode::History);
        println!(
            "{:<22} {:<9} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>6.1}% {:>7} {:>7} {:>7} {:>6.1}%",
            r.workload,
            r.link,
            stall(StreamMode::Off),
            stall(StreamMode::Static),
            stall(StreamMode::Stride),
            stall(StreamMode::History),
            r.stall_reduction_pct(),
            hist.map_or(0, |x| x.streamed),
            hist.map_or(0, |x| x.hits),
            hist.map_or(0, |x| x.wasted),
            hist.map_or(0.0, |x| x.waste_wire_frac) * 100.0,
        );
    }
    let (workloads, reduced) = sb::reduction_summary(&rows);
    println!();
    println!(
        "{reduced}/{workloads} workloads cut demand stall by >= 25% under the history predictor (best link); max wire waste {:.1}%",
        sb::max_waste_frac(&rows) * 100.0
    );

    if let Some(path) = out_path {
        let json = sb::to_json(&rows);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("stream: cannot write {path}: {e}");
            std::process::exit(2);
        }
        log.info(&format!("[wrote {path}]"));
    }
}

/// `profile <workload|all> [--net ...] [--mode ...] [--out FILE]
/// [--check FILE] [--diff A.json B.json]`: the trace-analytics engine.
/// For one workload, print the ranked critical-path attribution plus
/// lane-occupancy and queue-depth sparkline dashboards per cell. For
/// `all`, sweep the 72-cell suite into `BENCH_pr6.json` summaries.
/// `--check` re-profiles chess on the slow link and exits nonzero on a
/// lane or makespan regression against the committed artifact; `--diff`
/// compares two saved artifacts with noise-tolerant thresholds.
fn profile(rest: &[String], log: &Logger) {
    use offload_bench::profile as pb;
    use offload_bench::stream::links;
    use offload_obs::profile::{
        diff_summaries, parse_summaries, render_critical_path, render_diff, DiffTolerance,
    };
    use offload_obs::series::{render_dashboard, sample_lane_occupancy, sample_queue_depths};

    let profile_usage = "usage: reproduce profile <workload|all> [--net slow|fast|both] \
                         [--mode offload|stream|both] [--out FILE] [--check FILE] \
                         [--diff A.json B.json]";
    let mut selector: Option<&str> = None;
    let mut net = "both";
    let mut mode = "both";
    let mut out_path: Option<&str> = None;
    let mut check_path: Option<&str> = None;
    let mut diff_paths: Option<(&str, &str)> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--net" if i + 1 < rest.len() => {
                net = &rest[i + 1];
                i += 2;
            }
            "--mode" if i + 1 < rest.len() => {
                mode = &rest[i + 1];
                i += 2;
            }
            "--out" if i + 1 < rest.len() => {
                out_path = Some(&rest[i + 1]);
                i += 2;
            }
            "--check" if i + 1 < rest.len() => {
                check_path = Some(&rest[i + 1]);
                i += 2;
            }
            "--diff" if i + 2 < rest.len() => {
                diff_paths = Some((&rest[i + 1], &rest[i + 2]));
                i += 3;
            }
            arg if !arg.starts_with('-') && selector.is_none() => {
                selector = Some(arg);
                i += 1;
            }
            arg => {
                eprintln!("profile: unexpected argument `{arg}`\n{profile_usage}");
                std::process::exit(2);
            }
        }
    }
    if !["slow", "fast", "both"].contains(&net) {
        eprintln!("profile: unknown --net `{net}`\n{profile_usage}");
        std::process::exit(2);
    }
    if !["offload", "stream", "both"].contains(&mode) {
        eprintln!("profile: unknown --mode `{mode}`\n{profile_usage}");
        std::process::exit(2);
    }

    let read_artifact = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("profile: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };

    if let Some((a, b)) = diff_paths {
        let base = parse_summaries(&read_artifact(a));
        let new = parse_summaries(&read_artifact(b));
        if base.is_empty() || new.is_empty() {
            eprintln!("profile: no bench_pr6.v1 summaries in {a} or {b}");
            std::process::exit(2);
        }
        log.info(&format!(
            "[diffing {} cells in {b} against {} cells in {a}]",
            new.len(),
            base.len()
        ));
        let regs = diff_summaries(&base, &new, DiffTolerance::default());
        print!("{}", render_diff(&regs));
        if !regs.is_empty() {
            std::process::exit(1);
        }
        return;
    }

    if let Some(path) = check_path {
        log.info(&format!("[checking chess profile against {path}]"));
        match pb::check_against(&read_artifact(path)) {
            Ok(msg) => println!("profile check OK: {msg}"),
            Err(msg) => {
                eprintln!("profile check FAILED: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    let wanted_links = |name: &str| net == "both" || (net == "slow") == (name == "802.11n");
    let wanted_modes = |m: &str| mode == "both" || mode == m;

    match selector.unwrap_or("all") {
        "all" => {
            log.info("[profiling 18 workloads x 2 links x 2 modes ...]");
            let (summaries, cell_metrics) = pb::sweep();
            let shown: Vec<_> = summaries
                .iter()
                .filter(|s| wanted_links(&s.link) && wanted_modes(&s.mode))
                .cloned()
                .collect();
            println!("## Critical-path profiles (simulated seconds)");
            println!();
            print!("{}", pb::render_table(&shown));
            println!();
            let suite_sections: Vec<(&str, Vec<(String, f64)>)> = pb::MODES
                .iter()
                .map(|m| (*m, pb::suite_quantiles(&summaries, &cell_metrics, m)))
                .collect();
            for (m, qs) in &suite_sections {
                let fmt = |k: &str| {
                    qs.iter()
                        .find(|(n, _)| n == k)
                        .map_or("-".to_string(), |(_, v)| format!("{v:.4}"))
                };
                println!(
                    "suite {m}: makespan p50/p90/p99 = {}/{}/{} s, fault p99 = {} s, frame p99 = {} s",
                    fmt("makespan_p50_s"),
                    fmt("makespan_p90_s"),
                    fmt("makespan_p99_s"),
                    fmt("fault_p99_s"),
                    fmt("frame_p99_s"),
                );
            }
            if let Some(path) = out_path {
                let json = pb::to_json(&summaries, &suite_sections);
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("profile: cannot write {path}: {e}");
                    std::process::exit(2);
                }
                log.info(&format!("[wrote {path}]"));
            }
        }
        workload => {
            let suite = offload_bench::farm::suite();
            let Some((name, app, input)) = suite.iter().find(|(n, _, _)| n == workload) else {
                let known: Vec<&str> = suite.iter().map(|(n, _, _)| n.as_str()).collect();
                eprintln!(
                    "profile: unknown workload `{workload}` (known: {})",
                    known.join(", ")
                );
                std::process::exit(2);
            };
            for (link_name, link) in links() {
                if !wanted_links(link_name) {
                    continue;
                }
                for m in pb::MODES {
                    if !wanted_modes(m) {
                        continue;
                    }
                    let (summary, _, records) =
                        pb::profile_cell(name, app, input, link_name, link.clone(), m);
                    println!("=== {name} / {link_name} / {m} ===");
                    let cp = offload_obs::profile::critical_path(&records);
                    print!("{}", render_critical_path(&cp));
                    // Sparkline dashboards at ~64 bins across the run.
                    let dt = (summary.makespan_s / 64.0).max(1e-6);
                    let mut series = sample_lane_occupancy(&records, dt);
                    series.extend(sample_queue_depths(&records, dt));
                    print!("{}", render_dashboard(&series));
                    if !summary.quantiles.is_empty() {
                        let qs: Vec<String> = summary
                            .quantiles
                            .iter()
                            .map(|(k, v)| format!("{k}={v:.6}"))
                            .collect();
                        println!("quantiles: {}", qs.join(" "));
                    }
                    println!();
                }
            }
        }
    }
}

/// Table 1: chess movement computation time, phone vs desktop, by
/// difficulty. Paper: gap ≈ 5.4–5.9× at every level.
fn table1() {
    use offload_machine::host::LocalHost;
    use offload_machine::loader;
    use offload_machine::vm::{StackBank, Vm};

    println!("\n=== Table 1: chess movement computation, phone vs desktop ===");
    let module = offload_minic::compile(chess::SOURCE, "chess").expect("chess compiles");
    let mut rows = Vec::new();
    for depth in chess::TABLE1_DIFFICULTIES {
        let mut times = [0.0f64; 2];
        for (i, (spec, bank)) in [
            (TargetSpec::galaxy_s5(), StackBank::Mobile),
            (TargetSpec::xps_8700(), StackBank::Server),
        ]
        .into_iter()
        .enumerate()
        {
            // Each device runs its natively compiled binary, so function
            // pointers resolve against that back-end's own stubs. Images
            // are placed under the unified layout the VM executes with.
            let unified = offload_ir::TargetAbi::MobileArm32.data_layout();
            let image = match bank {
                StackBank::Mobile => loader::load(&module, &unified).expect("loads"),
                StackBank::Server => loader::load_for_server(&module, &unified).expect("loads"),
            };
            let mut host = LocalHost::new();
            host.set_stdin(chess::input(depth, 1).stdin);
            let mut vm = Vm::new(&module, &spec, image, bank);
            vm.enable_profile();
            vm.run_entry(&mut host).expect("runs");
            let prof = vm.profile.take().expect("profiled");
            let ai = module.function_by_name("getAITurn").expect("exists");
            times[i] = spec.cycles_to_seconds(prof.funcs[&ai].inclusive_cycles);
        }
        rows.push(vec![
            depth.to_string(),
            format!("{:.2}", times[1] * 1e3),
            format!("{:.2}", times[0] * 1e3),
            format!("{:.2}x", times[0] / times[1]),
        ]);
    }
    println!(
        "{}",
        render::table(
            &["difficulty", "desktop (ms)", "smartphone (ms)", "gap"],
            &rows
        )
    );
    println!("(paper measures 0.06–11.4 s desktop, 0.34–66 s phone, gap 5.36–5.89x)");
}

/// Table 2: the Android-app native-code survey (static dataset — the
/// survey cannot be re-measured offline).
fn table2() {
    println!("\n=== Table 2: C/C++ code in top-20 open-source Android apps (published data) ===");
    let rows: Vec<Vec<String>> = datasets::TABLE2
        .iter()
        .map(|r| {
            let ratio = if r.total_loc == 0 {
                0.0
            } else {
                r.c_loc as f64 / r.total_loc as f64 * 100.0
            };
            vec![
                r.app.to_string(),
                r.version.to_string(),
                r.description.to_string(),
                r.c_loc.to_string(),
                r.total_loc.to_string(),
                format!("{ratio:.2}%"),
                r.native_time_pct
                    .map_or("N/A".into(), |p| format!("{p:.2}%")),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "app",
                "version",
                "description",
                "C/C++ LoC",
                "total LoC",
                "ratio",
                "exec time"
            ],
            &rows
        )
    );
}

/// Table 3: the chess example's profiling + Equation-1 estimation under
/// the paper's assumptions (BW = 80 Mbps).
fn table3() {
    println!("\n=== Table 3: static performance estimation for the chess game (BW = 80 Mbps) ===");
    let app = Offloader::with_config(CompileConfig::table3())
        .compile_source(chess::SOURCE, "chess", &chess::input(9, 2))
        .expect("chess compiles");
    let r = app.config.mobile.performance_ratio(&app.config.server);
    println!("measured performance ratio R = {r:.2} (paper assumes 5)\n");
    let rows: Vec<Vec<String>> = app
        .plan
        .estimates
        .iter()
        .map(|row| {
            let verdict = if row.machine_specific {
                "machine specific".to_string()
            } else if row.selected {
                "SELECTED".to_string()
            } else {
                "not profitable".to_string()
            };
            vec![
                row.name.clone(),
                format!("{:.2}", row.exec_time_s * 1e3),
                row.invocations.to_string(),
                format!("{:.0}", row.mem_bytes as f64 / 1024.0),
                format!("{:.2}", row.t_ideal_s * 1e3),
                format!("{:.2}", row.t_comm_s * 1e3),
                format!("{:.2}", row.t_gain_s * 1e3),
                verdict,
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "candidate",
                "exec (ms)",
                "invo",
                "mem (KB)",
                "Tideal (ms)",
                "Tc (ms)",
                "Tg (ms)",
                "verdict"
            ],
            &rows
        )
    );
    println!("(paper: getAITurn/for_i selected; for_j rejected on invocation count;");
    println!(" getPlayerTurn/runGame/main filtered for interactive I/O)");
}

/// Table 4: per-program offload statistics, paper vs measured.
fn table4(suite: &[WorkloadRun]) {
    println!("\n=== Table 4: offloaded program details (measured | paper) ===");
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|run| {
            let s = &run.app.plan.stats;
            let p = &run.spec.paper;
            vec![
                run.spec.name.to_string(),
                format!("{:.1}", run.local.total_seconds * 1e3),
                format!("{}/{}", s.offloaded_functions, s.total_functions),
                format!("{}/{}", s.unified_globals, s.total_globals),
                s.fn_ptr_sites.to_string(),
                run.spec.expected_target.to_string(),
                format!("{:.1}%", s.coverage_percent),
                run.fast.offloads_performed.to_string(),
                format!("{:.1}", run.fast.traffic_mb_per_invocation() * 1e3),
                format!(
                    "{}|{:.0}s|{}inv|{:.0}MB",
                    p.target, p.exec_time_s, p.invocations, p.traffic_mb_per_inv
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "program",
                "exec (ms)",
                "offl fn",
                "ref GV",
                "fnptr",
                "target",
                "cover",
                "inv",
                "traf (KB/inv)",
                "paper row",
            ],
            &rows
        )
    );
}

/// Table 5: comparison with prior offloading systems (qualitative).
fn table5() {
    println!("\n=== Table 5: computation offloading systems (published comparison) ===");
    let rows: Vec<Vec<String>> = datasets::TABLE5
        .iter()
        .map(|r| {
            vec![
                r.system.to_string(),
                r.fully_automatic.to_string(),
                r.decision.to_string(),
                if r.requires_vm { "Yes" } else { "No" }.to_string(),
                r.language.to_string(),
                r.complexity.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "system",
                "fully automatic",
                "decision",
                "requires VM",
                "language",
                "complexity"
            ],
            &rows
        )
    );
}

/// Fig. 6(a): whole-program execution time normalized to local execution.
fn fig6a(suite: &[WorkloadRun]) {
    println!("\n=== Fig. 6(a): normalized execution time (local = 1.0; * = not offloaded) ===");
    let mut rows = Vec::new();
    let mut slow_norm = Vec::new();
    let mut fast_norm = Vec::new();
    let mut ideal_norm = Vec::new();
    for run in suite {
        let sn = run.slow.normalized_time(&run.local);
        let fnorm = run.fast.normalized_time(&run.local);
        let inorm = run.ideal.normalized_time(&run.local);
        slow_norm.push(sn);
        fast_norm.push(fnorm);
        ideal_norm.push(inorm);
        let star = |r: &native_offloader::RunReport| {
            if r.offloads_performed == 0 {
                "*"
            } else {
                ""
            }
        };
        rows.push(vec![
            run.spec.name.to_string(),
            format!("{sn:.3}{}", star(&run.slow)),
            format!("{fnorm:.3}{}", star(&run.fast)),
            format!("{inorm:.3}"),
            format!("{:.2}x", 1.0 / fnorm),
        ]);
    }
    rows.push(vec![
        "geomean".into(),
        format!("{:.3}", geomean(&slow_norm)),
        format!("{:.3}", geomean(&fast_norm)),
        format!("{:.3}", geomean(&ideal_norm)),
        format!("{:.2}x", 1.0 / geomean(&fast_norm)),
    ]);
    println!(
        "{}",
        render::table(
            &[
                "program",
                "slow (11n)",
                "fast (11ac)",
                "ideal",
                "fast speedup"
            ],
            &rows
        )
    );
    println!(
        "(paper: geomean time reduction 82.0% slow / 84.4% fast; whole-program speedup 6.42x)"
    );
}

/// Fig. 6(b): battery consumption normalized to local execution.
fn fig6b(suite: &[WorkloadRun]) {
    println!("\n=== Fig. 6(b): normalized battery consumption (local = 1.0) ===");
    let mut rows = Vec::new();
    let mut slow_norm = Vec::new();
    let mut fast_norm = Vec::new();
    for run in suite {
        let sn = run.slow.normalized_energy(&run.local);
        let fnorm = run.fast.normalized_energy(&run.local);
        slow_norm.push(sn);
        fast_norm.push(fnorm);
        rows.push(vec![
            run.spec.name.to_string(),
            format!("{sn:.3}"),
            format!("{fnorm:.3}"),
            format!("{:.1}%", (1.0 - fnorm) * 100.0),
        ]);
    }
    rows.push(vec![
        "geomean".into(),
        format!("{:.3}", geomean(&slow_norm)),
        format!("{:.3}", geomean(&fast_norm)),
        format!("{:.1}%", (1.0 - geomean(&fast_norm)) * 100.0),
    ]);
    println!(
        "{}",
        render::table(
            &["program", "slow (11n)", "fast (11ac)", "fast saving"],
            &rows
        )
    );
    println!("(paper: geomean battery saving 77.2% slow / 82.0% fast; gzip saves nothing)");
}

/// Fig. 7: overhead breakdown per program on both networks. Like the
/// paper's figure, the offload is *forced* (dynamic estimation off) so
/// the refused programs' communication costs become visible.
fn fig7(suite: &[WorkloadRun]) {
    println!(
        "\n=== Fig. 7: breakdown of offloaded execution (s = slow, f = fast; offload forced) ==="
    );
    println!(
        "segments: C compute (server+mobile)  P fn-ptr translation  R remote I/O  N network\n"
    );
    let mut forced: Vec<(
        String,
        native_offloader::RunReport,
        native_offloader::RunReport,
    )> = Vec::new();
    for run in suite {
        let input = (run.spec.eval_input)();
        let mut slow_cfg = SessionConfig::slow_network();
        slow_cfg.dynamic_estimation = false;
        let mut fast_cfg = SessionConfig::fast_network();
        fast_cfg.dynamic_estimation = false;
        let slow = run
            .app
            .run_offloaded(&input, &slow_cfg)
            .expect("forced slow");
        let fast = run
            .app
            .run_offloaded(&input, &fast_cfg)
            .expect("forced fast");
        forced.push((run.spec.name.to_string(), slow, fast));
    }
    let scale = forced
        .iter()
        .flat_map(|(_, s, f)| [s.total_seconds, f.total_seconds])
        .fold(f64::MIN, f64::max);
    let mut rows = Vec::new();
    for (name, slow, fast) in &forced {
        for (tag, rep) in [("s", slow), ("f", fast)] {
            let b = &rep.breakdown;
            let bar = render::stacked_bar(
                &[
                    ('C', b.mobile_compute_s + b.server_compute_s),
                    ('P', b.fn_ptr_translation_s),
                    ('R', b.remote_io_s),
                    ('N', b.communication_s),
                ],
                72,
                scale,
            );
            rows.push(vec![
                format!("{name}/{tag}"),
                format!("{:.1}", rep.total_seconds * 1e3),
                format!("{:.1}", (b.mobile_compute_s + b.server_compute_s) * 1e3),
                format!("{:.2}", b.fn_ptr_translation_s * 1e3),
                format!("{:.2}", b.remote_io_s * 1e3),
                format!("{:.2}", b.communication_s * 1e3),
                bar,
            ]);
        }
    }
    println!(
        "{}",
        render::table(
            &[
                "program/net",
                "total(ms)",
                "compute",
                "fnptr",
                "rem I/O",
                "network",
                "profile"
            ],
            &rows
        )
    );
    println!("(paper: gzip/bzip2/mcf/sjeng/lbm are network-bound on slow; gobmk/sjeng/h264ref");
    println!(" show visible fn-ptr translation; twolf/gobmk/h264ref show remote-I/O time)");
}

/// Fig. 8: power over time for sjeng (fast) and gobmk (fast + slow).
fn fig8() {
    println!("\n=== Fig. 8: mobile power over time ===");
    for (short, cfg, label) in [
        (
            "sjeng",
            SessionConfig::fast_network(),
            "458.sjeng, fast network",
        ),
        (
            "gobmk",
            SessionConfig::fast_network(),
            "445.gobmk, fast network",
        ),
        (
            "gobmk",
            SessionConfig::slow_network(),
            "445.gobmk, slow network",
        ),
    ] {
        let w = offload_workloads::by_short_name(short).expect("workload exists");
        let app = w.compile().expect("compiles");
        let mut cfg = cfg;
        cfg.dynamic_estimation = false; // trace the offload even if marginal
        let rep = app.run_offloaded(&(w.eval_input)(), &cfg).expect("runs");
        println!(
            "\n--- {label} (total {:.1} ms) ---",
            rep.total_seconds * 1e3
        );
        let spec = TargetSpec::galaxy_s5();
        let samples = rep.timeline.resample(&spec.power, rep.total_seconds / 72.0);
        // Render as one row per power level, Fig. 8 style.
        let levels: [(f64, &str); 5] = [
            (5000.0, "5000mW"),
            (3400.0, "3400mW"),
            (2000.0, "2000mW"),
            (1350.0, "1350mW"),
            (300.0, " 300mW"),
        ];
        for (level, label) in levels {
            let row: String = samples
                .iter()
                .map(|(_, p)| if (*p - level).abs() < 1.0 { '#' } else { ' ' })
                .collect();
            println!("{label} |{row}|");
        }
        let states: Vec<(PowerState, f64)> = rep
            .timeline
            .intervals()
            .iter()
            .map(|iv| (iv.state, iv.duration_s))
            .collect();
        let mut sums = std::collections::HashMap::new();
        for (s, d) in states {
            *sums.entry(format!("{s:?}")).or_insert(0.0) += d;
        }
        let mut sums: Vec<(String, f64)> = sums.into_iter().collect();
        sums.sort_by(|a, b| b.1.total_cmp(&a.1));
        let txt: Vec<String> = sums
            .iter()
            .map(|(s, d)| format!("{s} {:.1}ms", d * 1e3))
            .collect();
        println!("time in state: {}", txt.join(", "));
        println!(
            "energy {:.1} mJ; offloads {}, remote I/O calls {}",
            rep.energy_mj, rep.offloads_performed, rep.remote_io_calls
        );
    }
    println!("\n(paper: sjeng shows three tx/rx bursts around long 1350 mW waits;");
    println!(" gobmk never drops to the waiting floor because remote I/O keeps the radio busy)");
}

/// Calibration diagnostics (not a paper artifact): the per-task Equation-1
/// inputs and the runtime decisions on both networks.
fn calibrate(suite: &[WorkloadRun]) {
    println!("\n=== calibrate: per-task estimator inputs and outcomes ===");
    let mut rows = Vec::new();
    for run in suite {
        for task in &run.app.plan.tasks {
            let ratio_mb_s = task.mem_bytes as f64 / 1e6 / task.tm_per_invocation_s;
            rows.push(vec![
                format!("{}:{}", run.spec.short, task.name),
                format!("{:.2}", task.tm_per_invocation_s * 1e3),
                format!("{:.0}", task.mem_bytes as f64 / 1024.0),
                format!("{ratio_mb_s:.2}"),
                format!("{}", run.slow.offloads_performed),
                format!("{}", run.slow.offloads_refused),
                format!("{}", run.fast.offloads_performed),
                format!(
                    "{:.1}/{:.1}/{:.1}",
                    run.local.total_seconds * 1e3,
                    run.slow.total_seconds * 1e3,
                    run.fast.total_seconds * 1e3
                ),
                format!("{}", run.fast.demand_page_fetches),
            ]);
        }
    }
    println!(
        "{}",
        render::table(
            &[
                "task",
                "tm/inv(ms)",
                "M(KB)",
                "M/Tm MB/s",
                "slow off",
                "slow ref",
                "fast off",
                "t l/s/f ms",
                "faults"
            ],
            &rows
        )
    );
    println!("refusal band on slow (10 MB/s, R=6): M/Tm in (4.17, 26) MB/s");
}
