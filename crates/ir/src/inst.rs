//! Instructions, operators, builtins and call targets.

use std::fmt;

use crate::module::{BlockId, ConstValue, FuncId, StructId, ValueId};
use crate::types::Type;

/// Integer/float binary operators. Division and remainder are signed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (wrapping for integers).
    Add,
    /// Subtraction (wrapping for integers).
    Sub,
    /// Multiplication (wrapping for integers).
    Mul,
    /// Signed division.
    Div,
    /// Signed remainder.
    Rem,
    /// Bitwise and (integers only).
    And,
    /// Bitwise or (integers only).
    Or,
    /// Bitwise xor (integers only).
    Xor,
    /// Left shift (integers only).
    Shl,
    /// Arithmetic right shift (integers only).
    Shr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement (integers only).
    Not,
    /// Byte-order reversal. Inserted by the memory unifier's *endianness
    /// translation* (§3.2) around memory accesses when the two devices
    /// disagree on byte order; never produced by the front-end.
    ByteSwap,
}

/// Comparison operators (signed for integers). The result is `i32` 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

/// Value conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Zero-extend a narrower integer.
    Zext,
    /// Sign-extend a narrower integer.
    Sext,
    /// Truncate a wider integer.
    Trunc,
    /// Signed integer to float.
    SiToF,
    /// Float to signed integer (truncating).
    FToSi,
    /// Reinterpret a pointer as another pointer type (no-op at run time).
    PtrCast,
    /// Pointer to integer.
    PtrToInt,
    /// Integer to pointer.
    IntToPtr,
    /// Zero-extend a 32-bit mobile pointer to the server's 64-bit registers:
    /// the paper's *address size conversion* (§3.2). Semantically the
    /// identity in this simulation (all addresses fit in 32 bits) but kept
    /// as a distinct kind so its (negligible, §5.1) cost is attributable.
    PtrZext,
}

/// Built-in functions recognized by the VM and classified by the function
/// filter (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    // -- memory management ------------------------------------------------
    /// C `malloc`; replaced by [`Builtin::UMalloc`] by the memory unifier.
    Malloc,
    /// C `free`; replaced by [`Builtin::UFree`] by the memory unifier.
    Free,
    /// Allocation on the unified virtual address space (§3.2).
    UMalloc,
    /// Deallocation on the unified virtual address space.
    UFree,
    /// C `memcpy(dst, src, n)`.
    Memcpy,
    /// C `memset(dst, byte, n)`.
    Memset,
    /// C `strlen(s)`.
    Strlen,
    /// C `strcmp(a, b)`.
    Strcmp,
    /// C `strcpy(dst, src)`.
    Strcpy,

    // -- local I/O (machine specific unless remoted) ----------------------
    /// C `printf(fmt, ...)` to the device console.
    Printf,
    /// C `scanf(fmt, ...)` from the device console — *interactive input*,
    /// never remotable (§3.4: remote input would need round trips).
    Scanf,
    /// C `putchar(c)`.
    Putchar,
    /// C `getchar()` — interactive input, never remotable.
    Getchar,
    /// `fopen(path, mode) -> fd` on the device filesystem.
    FOpen,
    /// `fclose(fd)`.
    FClose,
    /// `fread(buf, size, count, fd) -> items`.
    FRead,
    /// `fwrite(buf, size, count, fd) -> items`.
    FWrite,

    // -- remote I/O (server-side replacements, §3.4) ----------------------
    /// `printf` executed remotely: the server ships the formatted bytes to
    /// the mobile device's console.
    RPrintf,
    /// Remote `putchar`.
    RPutchar,
    /// Remote `fopen`, resolved on the mobile device's filesystem.
    RFOpen,
    /// Remote `fclose`.
    RFClose,
    /// Remote `fread` — a *remote input*, requiring round-trip
    /// communication (file streams stay remotable because the runtime can
    /// prefetch and amortize, §3.4).
    RFRead,
    /// Remote `fwrite`.
    RFWrite,

    // -- math (machine independent) ---------------------------------------
    /// `sqrt(f64)`.
    Sqrt,
    /// `fabs(f64)`.
    Fabs,
    /// `exp(f64)`.
    Exp,
    /// `log(f64)`.
    Log,
    /// `sin(f64)`.
    Sin,
    /// `cos(f64)`.
    Cos,
    /// `pow(f64, f64)`.
    Pow,
    /// `floor(f64)`.
    Floor,

    // -- machine specific ---------------------------------------------------
    /// Read the device cycle counter — machine specific by definition.
    Clock,
    /// Terminate the program with an exit code.
    Exit,

    // -- offload runtime (inserted by the partitioner, §3.3/§3.4) ----------
    /// `is_profitable(task_id) -> i32`: the runtime's dynamic performance
    /// estimation (§3.1) decides whether to offload right now.
    IsProfitable,
    /// `offload_call(task_id) -> i64`: request offload of a task; the
    /// runtime ships live-ins, waits for the server, applies write-backs
    /// and yields the (bit-packed) return value.
    OffloadCall,
    /// Like [`Builtin::OffloadCall`] but with an `f64` return value.
    OffloadCallF,
    /// Server: block until an offload request arrives; returns the task id,
    /// or 0 when the client disconnects.
    AcceptOffload,
    /// Server: fetch the `i`-th integer/pointer argument of the current
    /// offload request.
    RecvArgI,
    /// Server: fetch the `i`-th float argument of the current request.
    RecvArgF,
    /// Server: send the task's return value (integer/pointer) home.
    SendReturn,
    /// Server: send the task's `f64` return value home.
    SendReturnF,
    /// Server: translate a function-pointer value into the local device's
    /// address through the function map tables (`s2mFcnMap`/`m2sFcnMap`,
    /// §3.4).
    FnMapToLocal,
}

impl Builtin {
    /// `true` if the builtin makes the enclosing region machine specific
    /// under the function filter's rules (§3.1): I/O instructions and
    /// syscall-like operations. Remote-I/O replacements are *not* machine
    /// specific — that replacement is how the filter's coverage grows.
    pub fn is_machine_specific(&self) -> bool {
        use Builtin::*;
        matches!(
            self,
            Printf | Scanf | Putchar | Getchar | FOpen | FClose | FRead | FWrite | Clock | Exit
        )
    }

    /// `true` if the builtin is an I/O operation with a remote-executable
    /// replacement (§3.4). `scanf`/`getchar` are interactive inputs and are
    /// excluded; file input is included because it is prefetchable.
    pub fn remote_replacement(&self) -> Option<Builtin> {
        use Builtin::*;
        match self {
            Printf => Some(RPrintf),
            Putchar => Some(RPutchar),
            FOpen => Some(RFOpen),
            FClose => Some(RFClose),
            FRead => Some(RFRead),
            FWrite => Some(RFWrite),
            _ => None,
        }
    }

    /// `true` for the remote-I/O builtins themselves.
    pub fn is_remote_io(&self) -> bool {
        use Builtin::*;
        matches!(
            self,
            RPrintf | RPutchar | RFOpen | RFClose | RFRead | RFWrite
        )
    }

    /// `true` for remote I/O that needs a round trip (inputs).
    pub fn is_remote_input(&self) -> bool {
        matches!(self, Builtin::RFRead | Builtin::RFOpen)
    }

    /// The canonical source-level name.
    pub fn name(&self) -> &'static str {
        use Builtin::*;
        match self {
            Malloc => "malloc",
            Free => "free",
            UMalloc => "u_malloc",
            UFree => "u_free",
            Memcpy => "memcpy",
            Memset => "memset",
            Strlen => "strlen",
            Strcmp => "strcmp",
            Strcpy => "strcpy",
            Printf => "printf",
            Scanf => "scanf",
            Putchar => "putchar",
            Getchar => "getchar",
            FOpen => "fopen",
            FClose => "fclose",
            FRead => "fread",
            FWrite => "fwrite",
            RPrintf => "r_printf",
            RPutchar => "r_putchar",
            RFOpen => "r_fopen",
            RFClose => "r_fclose",
            RFRead => "r_fread",
            RFWrite => "r_fwrite",
            Sqrt => "sqrt",
            Fabs => "fabs",
            Exp => "exp",
            Log => "log",
            Sin => "sin",
            Cos => "cos",
            Pow => "pow",
            Floor => "floor",
            Clock => "clock",
            Exit => "exit",
            IsProfitable => "is_profitable",
            OffloadCall => "offload_call",
            OffloadCallF => "offload_call_f",
            AcceptOffload => "accept_offload",
            RecvArgI => "recv_arg_i",
            RecvArgF => "recv_arg_f",
            SendReturn => "send_return",
            SendReturnF => "send_return_f",
            FnMapToLocal => "fn_map_to_local",
        }
    }

    /// Look a builtin up by its source-level name (used by the MiniC
    /// front-end).
    pub fn from_name(name: &str) -> Option<Builtin> {
        use Builtin::*;
        Some(match name {
            "malloc" => Malloc,
            "free" => Free,
            "u_malloc" => UMalloc,
            "u_free" => UFree,
            "memcpy" => Memcpy,
            "memset" => Memset,
            "strlen" => Strlen,
            "strcmp" => Strcmp,
            "strcpy" => Strcpy,
            "printf" => Printf,
            "scanf" => Scanf,
            "putchar" => Putchar,
            "getchar" => Getchar,
            "fopen" => FOpen,
            "fclose" => FClose,
            "fread" => FRead,
            "fwrite" => FWrite,
            "sqrt" => Sqrt,
            "fabs" => Fabs,
            "exp" => Exp,
            "log" => Log,
            "sin" => Sin,
            "cos" => Cos,
            "pow" => Pow,
            "floor" => Floor,
            "clock" => Clock,
            "exit" => Exit,
            _ => return None,
        })
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The target of a [`Inst::Call`].
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// Direct call to a function in this module (possibly an external
    /// declaration, which the function filter treats as machine specific).
    Direct(FuncId),
    /// Indirect call through a function-pointer value.
    Indirect(ValueId),
    /// Call to a VM builtin.
    Builtin(Builtin),
}

/// An IR instruction.
///
/// Aggregates are manipulated through memory (there is no `phi`; the
/// front-end lowers locals to [`Inst::Alloca`] slots, clang -O0 style),
/// which keeps partitioning and interpretation straightforward.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Materialize a constant into a register.
    Const {
        /// Destination register.
        dst: ValueId,
        /// The constant.
        value: ConstValue,
    },
    /// Reserve `count` elements of stack storage of type `ty`; yields the
    /// address.
    Alloca {
        /// Destination register (a pointer).
        dst: ValueId,
        /// Element type.
        ty: Type,
        /// Number of elements.
        count: u64,
    },
    /// Load a register value of type `ty` from memory.
    Load {
        /// Destination register.
        dst: ValueId,
        /// Loaded type.
        ty: Type,
        /// Address register.
        addr: ValueId,
    },
    /// Store a register value of type `ty` to memory.
    Store {
        /// Stored type.
        ty: Type,
        /// Address register.
        addr: ValueId,
        /// Value register.
        value: ValueId,
    },
    /// Address of field `field` of the struct at `base`.
    FieldAddr {
        /// Destination register (a pointer).
        dst: ValueId,
        /// Base address register.
        base: ValueId,
        /// Struct type.
        sid: StructId,
        /// Field index.
        field: u32,
    },
    /// Address of element `index` of an array of `elem` at `base`.
    IndexAddr {
        /// Destination register (a pointer).
        dst: ValueId,
        /// Base address register.
        base: ValueId,
        /// Element type.
        elem: Type,
        /// Index register (any integer type).
        index: ValueId,
    },
    /// Binary arithmetic.
    Bin {
        /// Destination register.
        dst: ValueId,
        /// Operator.
        op: BinOp,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Unary arithmetic.
    Un {
        /// Destination register.
        dst: ValueId,
        /// Operator.
        op: UnOp,
        /// Operand type.
        ty: Type,
        /// Operand.
        operand: ValueId,
    },
    /// Comparison; yields `i32` 0 or 1.
    Cmp {
        /// Destination register.
        dst: ValueId,
        /// Operator.
        op: CmpOp,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Value conversion.
    Cast {
        /// Destination register.
        dst: ValueId,
        /// Conversion kind.
        kind: CastKind,
        /// Result type.
        to: Type,
        /// Source register.
        src: ValueId,
    },
    /// Function call.
    Call {
        /// Destination register (`None` for void).
        dst: Option<ValueId>,
        /// Call target.
        callee: Callee,
        /// Argument registers.
        args: Vec<ValueId>,
    },
    /// Return from the function.
    Ret {
        /// Returned register (`None` for void).
        value: Option<ValueId>,
    },
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch on an integer register (nonzero = then).
    CondBr {
        /// Condition register.
        cond: ValueId,
        /// Target when nonzero.
        then_bb: BlockId,
        /// Target when zero.
        else_bb: BlockId,
    },
    /// Inline assembly — machine specific by definition (§3.1). The text is
    /// opaque; the VM refuses to execute it off-device.
    InlineAsm {
        /// The assembly text.
        text: String,
    },
    /// A raw system call — machine specific (§3.1).
    Syscall {
        /// Destination register.
        dst: ValueId,
        /// Syscall number.
        number: u32,
        /// Argument registers.
        args: Vec<ValueId>,
    },
}

impl Inst {
    /// `true` for instructions that must terminate a block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Ret { .. } | Inst::Br { .. } | Inst::CondBr { .. }
        )
    }

    /// The destination register, if the instruction defines one.
    pub fn dst(&self) -> Option<ValueId> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Alloca { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::FieldAddr { dst, .. }
            | Inst::IndexAddr { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::Syscall { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Append every register this instruction reads to `out`.
    pub fn uses(&self, out: &mut Vec<ValueId>) {
        match self {
            Inst::Const { .. } | Inst::Alloca { .. } | Inst::Br { .. } | Inst::InlineAsm { .. } => {
            }
            Inst::Load { addr, .. } => out.push(*addr),
            Inst::Store { addr, value, .. } => out.extend([*addr, *value]),
            Inst::FieldAddr { base, .. } => out.push(*base),
            Inst::IndexAddr { base, index, .. } => out.extend([*base, *index]),
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => out.extend([*lhs, *rhs]),
            Inst::Un { operand, .. } => out.push(*operand),
            Inst::Cast { src, .. } => out.push(*src),
            Inst::Call { callee, args, .. } => {
                if let Callee::Indirect(v) = callee {
                    out.push(*v);
                }
                out.extend(args.iter().copied());
            }
            Inst::Ret { value } => out.extend(value.iter().copied()),
            Inst::CondBr { cond, .. } => out.push(*cond),
            Inst::Syscall { args, .. } => out.extend(args.iter().copied()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators() {
        assert!(Inst::Ret { value: None }.is_terminator());
        assert!(Inst::Br { target: BlockId(0) }.is_terminator());
        assert!(!Inst::Const {
            dst: ValueId(0),
            value: ConstValue::I32(0)
        }
        .is_terminator());
    }

    #[test]
    fn machine_specific_builtins() {
        assert!(Builtin::Scanf.is_machine_specific());
        assert!(Builtin::Printf.is_machine_specific());
        assert!(Builtin::Clock.is_machine_specific());
        assert!(!Builtin::Sqrt.is_machine_specific());
        assert!(!Builtin::Malloc.is_machine_specific());
        assert!(!Builtin::RPrintf.is_machine_specific());
    }

    #[test]
    fn remote_replacements() {
        assert_eq!(Builtin::Printf.remote_replacement(), Some(Builtin::RPrintf));
        assert_eq!(Builtin::FRead.remote_replacement(), Some(Builtin::RFRead));
        // Interactive inputs stay machine specific.
        assert_eq!(Builtin::Scanf.remote_replacement(), None);
        assert_eq!(Builtin::Getchar.remote_replacement(), None);
    }

    #[test]
    fn remote_io_classification() {
        assert!(Builtin::RPrintf.is_remote_io());
        assert!(Builtin::RFRead.is_remote_input());
        assert!(!Builtin::RPrintf.is_remote_input());
        assert!(!Builtin::Printf.is_remote_io());
    }

    #[test]
    fn builtin_names_roundtrip() {
        for b in [
            Builtin::Malloc,
            Builtin::Printf,
            Builtin::Sqrt,
            Builtin::FRead,
        ] {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
        }
        assert_eq!(Builtin::from_name("nope"), None);
        // Runtime-inserted builtins are not source-nameable.
        assert_eq!(Builtin::from_name("is_profitable"), None);
    }

    #[test]
    fn uses_and_dst() {
        let mut uses = Vec::new();
        let inst = Inst::Store {
            ty: Type::I32,
            addr: ValueId(1),
            value: ValueId(2),
        };
        inst.uses(&mut uses);
        assert_eq!(uses, vec![ValueId(1), ValueId(2)]);
        assert_eq!(inst.dst(), None);

        let call = Inst::Call {
            dst: Some(ValueId(5)),
            callee: Callee::Indirect(ValueId(3)),
            args: vec![ValueId(4)],
        };
        let mut uses = Vec::new();
        call.uses(&mut uses);
        assert_eq!(uses, vec![ValueId(3), ValueId(4)]);
        assert_eq!(call.dst(), Some(ValueId(5)));
    }
}
