//! A minimal leveled logger for the tools that ride on the stack (the
//! `reproduce` binary, examples). Messages go to stderr so figure output
//! on stdout stays machine-readable; `--quiet` maps to
//! [`Verbosity::Quiet`].

use std::io::Write;

/// How much progress chatter to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Suppress progress messages entirely.
    Quiet,
    /// Normal progress messages.
    Info,
    /// Extra diagnostic detail.
    Debug,
}

/// A stderr logger with a verbosity gate.
#[derive(Debug, Clone, Copy)]
pub struct Logger {
    verbosity: Verbosity,
}

impl Logger {
    /// A logger at the given verbosity.
    pub fn new(verbosity: Verbosity) -> Self {
        Logger { verbosity }
    }

    /// A quiet logger (drops everything below errors).
    pub fn quiet() -> Self {
        Self::new(Verbosity::Quiet)
    }

    /// The active verbosity.
    pub fn verbosity(&self) -> Verbosity {
        self.verbosity
    }

    /// Progress message (suppressed when quiet).
    pub fn info(&self, msg: &str) {
        if self.verbosity >= Verbosity::Info {
            let _ = writeln!(std::io::stderr(), "{msg}");
        }
    }

    /// Diagnostic message (only at debug verbosity).
    pub fn debug(&self, msg: &str) {
        if self.verbosity >= Verbosity::Debug {
            let _ = writeln!(std::io::stderr(), "[debug] {msg}");
        }
    }
}

impl Default for Logger {
    fn default() -> Self {
        Self::new(Verbosity::Info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_orders() {
        assert!(Verbosity::Quiet < Verbosity::Info);
        assert!(Verbosity::Info < Verbosity::Debug);
        assert_eq!(Logger::quiet().verbosity(), Verbosity::Quiet);
        // Smoke: none of these panic.
        Logger::quiet().info("dropped");
        Logger::default().debug("dropped");
    }
}
