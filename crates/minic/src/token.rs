//! Tokens produced by the lexer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and identifiers.
    /// Integer literal (decimal, hex, or char constant).
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (escapes already decoded).
    Str(String),
    /// Identifier.
    Ident(String),

    // Keywords.
    /// `void`
    Void,
    /// `char`
    Char,
    /// `short`
    Short,
    /// `int`
    Kint,
    /// `long`
    Long,
    /// `double`
    Double,
    /// `struct`
    Struct,
    /// `typedef`
    Typedef,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `do`
    Do,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `sizeof`
    Sizeof,
    /// `asm`
    Asm,
    /// `switch`
    Switch,
    /// `case`
    Case,
    /// `default`
    Default,
    /// `unsigned` (accepted and ignored; MiniC arithmetic is signed)
    Unsigned,
    /// `const` (accepted and ignored)
    Const,
    /// `static` (accepted and ignored)
    Static,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `%=`
    PercentAssign,
    /// `&=`
    AmpAssign,
    /// `|=`
    PipeAssign,
    /// `^=`
    CaretAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `?`
    Question,
    /// `:`
    Colon,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}
