//! Memory unification code generation (§3.2).
//!
//! Five sub-passes, mirroring Fig. 2's "Memory Unification" box:
//!
//! 1. **Heap allocation replacement** — every `malloc`/`free` site becomes
//!    `u_malloc`/`u_free` so every object lives on the UVA space. All
//!    sites are replaced "because a server may access an object not on the
//!    UVA space due to imprecise static alias analysis".
//! 2. **Referenced global variable allocation** — globals whose address is
//!    referenced are marked for the unified globals segment (Table 4's
//!    "Referenced GV" column).
//! 3. **Memory layout realignment** — the server's struct layouts are
//!    forced to the mobile standard (Fig. 4); this pass reports which
//!    structs needed realignment and how much padding that injected. (The
//!    simulated server VM executes under the unified layout; the stats —
//!    and the layout-mismatch tests — demonstrate why it must.)
//! 4. **Address size conversion** — on a 64-bit server, a `PtrZext` cast
//!    is inserted after every pointer load, widening the 32-bit unified
//!    pointer into the server's registers.
//! 5. **Endianness translation** — when byte orders differ, `ByteSwap`
//!    is inserted after every load and before every store.

use offload_ir::{Builtin, Callee, DataLayout, Inst, Module, TargetAbi, Type, UnOp, ValueId};

/// What the unifier did (feeding [`CompileStats`](crate::CompileStats)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnifyOutcome {
    /// `malloc`/`free` call sites rewritten.
    pub heap_sites: usize,
    /// Globals marked for the unified segment.
    pub unified_globals: usize,
    /// Structs whose native server layout differed from the unified one.
    pub structs_realigned: usize,
    /// Total padding bytes the realignment injected (mobile size − packed
    /// native size, summed where positive).
    pub realign_padding_bytes: u64,
    /// `PtrZext` casts inserted (server module).
    pub ptr_zext_inserted: usize,
    /// `ByteSwap` ops inserted (server module).
    pub byteswaps_inserted: usize,
}

/// Rewrite all heap-allocation sites to UVA allocation (§3.2) and mark
/// referenced globals. Applies to the shared (pre-partition) module.
pub fn unify_memory(module: &mut Module) -> UnifyOutcome {
    let mut out = UnifyOutcome::default();

    // 1. Heap allocation replacement.
    for fi in 0..module.function_count() {
        let func = module.function_mut(offload_ir::FuncId(fi as u32));
        for block in &mut func.blocks {
            for inst in &mut block.insts {
                if let Inst::Call {
                    callee: Callee::Builtin(b),
                    ..
                } = inst
                {
                    match b {
                        Builtin::Malloc => {
                            *b = Builtin::UMalloc;
                            out.heap_sites += 1;
                        }
                        Builtin::Free => {
                            *b = Builtin::UFree;
                            out.heap_sites += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    // 2. Referenced global variable allocation.
    let mut referenced = vec![false; module.global_count()];
    for (_, func) in module.iter_functions() {
        for block in &func.blocks {
            for inst in &block.insts {
                if let Inst::Const {
                    value: offload_ir::ConstValue::GlobalAddr(g),
                    ..
                } = inst
                {
                    referenced[g.0 as usize] = true;
                }
            }
        }
    }
    for (i, r) in referenced.iter().enumerate() {
        if *r {
            module.global_mut(offload_ir::GlobalId(i as u32)).unified = true;
            out.unified_globals += 1;
        }
    }
    out
}

/// Report the §3.2 realignment work for `server_abi`: which structs would
/// be laid out differently by the server's native ABI, and the padding the
/// unified (mobile) layout carries relative to the native one.
pub fn realignment_stats(module: &Module, server_abi: TargetAbi) -> (usize, u64) {
    let unified = TargetAbi::MobileArm32.data_layout();
    let native = server_abi.data_layout();
    let mut realigned = 0usize;
    let mut padding = 0u64;
    for sid in module.struct_ids() {
        let u = unified.struct_layout(sid, module);
        let n = native.struct_layout(sid, module);
        if u != n {
            realigned += 1;
            padding += u.size.saturating_sub(n.size);
        }
    }
    (realigned, padding)
}

/// Insert the server-side conversion shims into `module` (which must be
/// the server partition): pointer zero-extension when the server is
/// 64-bit, and endianness translation when byte orders differ.
pub fn insert_server_conversions(module: &mut Module, server_abi: TargetAbi) -> UnifyOutcome {
    let mut out = UnifyOutcome::default();
    let native: DataLayout = server_abi.data_layout();
    let needs_zext = native.ptr_bytes != TargetAbi::MobileArm32.data_layout().ptr_bytes;
    let needs_swap = native.endian != TargetAbi::MobileArm32.data_layout().endian;
    if !needs_zext && !needs_swap {
        return out;
    }

    for fi in 0..module.function_count() {
        let func = module.function_mut(offload_ir::FuncId(fi as u32));
        if func.is_declaration() {
            continue;
        }
        for bi in 0..func.blocks.len() {
            let mut i = 0usize;
            while i < func.blocks[bi].insts.len() {
                match func.blocks[bi].insts[i].clone() {
                    Inst::Load { dst, ty, addr } => {
                        let mut cursor = i;
                        let mut latest = dst;
                        if needs_swap && swappable(&ty) {
                            let swapped = ValueId(func.value_types.len() as u32);
                            func.value_types.push(ty.clone());
                            cursor += 1;
                            func.blocks[bi].insts.insert(
                                cursor,
                                Inst::Un {
                                    dst: swapped,
                                    op: UnOp::ByteSwap,
                                    ty: ty.clone(),
                                    operand: latest,
                                },
                            );
                            rename_uses_after(func, bi, cursor + 1, latest, swapped);
                            latest = swapped;
                            out.byteswaps_inserted += 1;
                        }
                        if needs_zext && ty.is_ptr() {
                            let widened = ValueId(func.value_types.len() as u32);
                            func.value_types.push(ty.clone());
                            cursor += 1;
                            func.blocks[bi].insts.insert(
                                cursor,
                                Inst::Cast {
                                    dst: widened,
                                    kind: offload_ir::CastKind::PtrZext,
                                    to: ty.clone(),
                                    src: latest,
                                },
                            );
                            rename_uses_after(func, bi, cursor + 1, latest, widened);
                            out.ptr_zext_inserted += 1;
                        }
                        let _ = addr;
                        i = cursor + 1;
                    }
                    Inst::Store { ty, addr, value } if needs_swap && swappable(&ty) => {
                        let swapped = ValueId(func.value_types.len() as u32);
                        func.value_types.push(ty.clone());
                        func.blocks[bi].insts.insert(
                            i,
                            Inst::Un {
                                dst: swapped,
                                op: UnOp::ByteSwap,
                                ty: ty.clone(),
                                operand: value,
                            },
                        );
                        func.blocks[bi].insts[i + 1] = Inst::Store {
                            ty,
                            addr,
                            value: swapped,
                        };
                        out.byteswaps_inserted += 1;
                        i += 2;
                    }
                    _ => i += 1,
                }
            }
        }
    }
    out
}

fn swappable(ty: &Type) -> bool {
    matches!(ty, Type::I16 | Type::I32 | Type::I64 | Type::F64) || ty.is_ptr()
}

/// Rename uses of `old` to `new` in block `bi` from `start` onward and in
/// every later block. (Registers are defined once, so this is sound.)
fn rename_uses_after(
    func: &mut offload_ir::Function,
    bi: usize,
    start: usize,
    old: ValueId,
    new: ValueId,
) {
    let rename = |inst: &mut Inst| {
        replace_uses(inst, old, new);
    };
    for inst in func.blocks[bi].insts[start..].iter_mut() {
        rename(inst);
    }
    // Registers may be used in any other block (not only later ones) when
    // the CFG loops back; rename everywhere except the defining point.
    for (bj, block) in func.blocks.iter_mut().enumerate() {
        if bj == bi {
            continue;
        }
        for inst in &mut block.insts {
            rename(inst);
        }
    }
}

fn replace_uses(inst: &mut Inst, old: ValueId, new: ValueId) {
    use Inst::*;
    let r = |v: &mut ValueId| {
        if *v == old {
            *v = new;
        }
    };
    match inst {
        Const { .. } | Alloca { .. } | Br { .. } | InlineAsm { .. } => {}
        Load { addr, .. } => r(addr),
        Store { addr, value, .. } => {
            r(addr);
            r(value);
        }
        FieldAddr { base, .. } => r(base),
        IndexAddr { base, index, .. } => {
            r(base);
            r(index);
        }
        Bin { lhs, rhs, .. } | Cmp { lhs, rhs, .. } => {
            r(lhs);
            r(rhs);
        }
        Un { operand, .. } => r(operand),
        Cast { src, .. } => r(src),
        Call { callee, args, .. } => {
            if let Callee::Indirect(v) = callee {
                r(v);
            }
            for a in args {
                r(a);
            }
        }
        Ret { value } => {
            if let Some(v) = value {
                r(v);
            }
        }
        CondBr { cond, .. } => r(cond),
        Syscall { args, .. } => {
            for a in args {
                r(a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_ir::verify::verify_module;
    use offload_machine::host::LocalHost;
    use offload_machine::loader;
    use offload_machine::target::TargetSpec;
    use offload_machine::vm::{StackBank, Vm};

    const SRC: &str = "
        int counter;
        int limit = 10;
        int unused_global;
        typedef struct { char a; double d; } Rec;
        int main() {
            Rec *r = (Rec*)malloc(sizeof(Rec) * 4);
            int i;
            for (i = 0; i < limit; i++) counter += i;
            r[2].d = (double)counter;
            printf(\"%d %.0f\\n\", counter, r[2].d);
            free((char*)r);
            return 0;
        }";

    #[test]
    fn heap_sites_rewritten_and_globals_marked() {
        let mut m = offload_minic::compile(SRC, "t").unwrap();
        let out = unify_memory(&mut m);
        assert_eq!(out.heap_sites, 2, "malloc + free");
        // counter and limit are referenced; unused_global and .str are not.
        assert_eq!(out.unified_globals, 2 + 1 /* format string */);
        assert!(m.global(m.global_by_name("counter").unwrap()).unified);
        assert!(!m.global(m.global_by_name("unused_global").unwrap()).unified);
        // No plain malloc remains.
        for (_, f) in m.iter_functions() {
            for b in &f.blocks {
                for inst in &b.insts {
                    if let Inst::Call {
                        callee: Callee::Builtin(bi),
                        ..
                    } = inst
                    {
                        assert!(!matches!(bi, Builtin::Malloc | Builtin::Free));
                    }
                }
            }
        }
        verify_module(&m).unwrap();
    }

    #[test]
    fn realignment_detects_fig4_mismatch() {
        let m = offload_minic::compile(SRC, "t").unwrap();
        // IA32 packs doubles to 4-byte alignment: Rec differs.
        let (realigned, padding) = realignment_stats(&m, TargetAbi::ServerIa32);
        assert_eq!(realigned, 1);
        assert_eq!(padding, 4, "ARM Rec is 16 B, IA32 Rec is 12 B");
        // x86-64 aligns doubles to 8 like ARM: no realignment needed.
        let (realigned, _) = realignment_stats(&m, TargetAbi::ServerX8664);
        assert_eq!(realigned, 0);
    }

    #[test]
    fn x8664_gets_ptr_zext_but_no_byteswap() {
        let mut m = offload_minic::compile(SRC, "t").unwrap();
        unify_memory(&mut m);
        let out = insert_server_conversions(&mut m, TargetAbi::ServerX8664);
        assert!(out.ptr_zext_inserted > 0, "pointer loads must be widened");
        assert_eq!(
            out.byteswaps_inserted, 0,
            "both devices are little-endian (§5.1)"
        );
        verify_module(&m).unwrap();
    }

    #[test]
    fn transformed_module_still_computes_the_same() {
        let reference = {
            let m = offload_minic::compile(SRC, "t").unwrap();
            run(&m, &TargetSpec::galaxy_s5())
        };
        let mut m = offload_minic::compile(SRC, "t").unwrap();
        unify_memory(&mut m);
        insert_server_conversions(&mut m, TargetAbi::ServerX8664);
        verify_module(&m).unwrap();
        assert_eq!(run(&m, &TargetSpec::xps_8700()), reference);
    }

    #[test]
    fn big_endian_server_needs_byteswaps_and_they_work() {
        let reference = {
            let m = offload_minic::compile(SRC, "t").unwrap();
            run(&m, &TargetSpec::galaxy_s5())
        };
        let mut m = offload_minic::compile(SRC, "t").unwrap();
        unify_memory(&mut m);
        let out = insert_server_conversions(&mut m, TargetAbi::ServerBigEndian64);
        assert!(out.byteswaps_inserted > 0);
        verify_module(&m).unwrap();
        // Run on the synthetic BE server: the inserted swaps make the
        // little-endian unified memory readable.
        assert_eq!(run(&m, &TargetSpec::big_endian_server()), reference);
    }

    #[test]
    fn big_endian_without_translation_breaks() {
        // The negative control: skip the translation pass and the BE
        // server computes garbage — §3.2's whole point.
        let reference = {
            let m = offload_minic::compile(SRC, "t").unwrap();
            run(&m, &TargetSpec::galaxy_s5())
        };
        let mut m = offload_minic::compile(SRC, "t").unwrap();
        unify_memory(&mut m);
        let be = run(&m, &TargetSpec::big_endian_server());
        assert_ne!(
            be, reference,
            "unswapped big-endian reads must corrupt data"
        );
    }

    fn run(m: &Module, spec: &TargetSpec) -> String {
        let image = loader::load(m, &TargetAbi::MobileArm32.data_layout()).unwrap();
        let mut host = LocalHost::new();
        let mut vm = Vm::new(m, spec, image, StackBank::Mobile);
        vm.set_fuel(100_000_000);
        match vm.run_entry(&mut host) {
            Ok(_) => host.console_utf8(),
            Err(e) => format!("error: {e}"),
        }
    }
}
