//! Static datasets reprinted from the paper: measurements that cannot be
//! re-taken offline (the Table 2 Android-app survey) and the qualitative
//! Table 5 related-work comparison.

/// One row of Table 2: the top-20 open-source Android app survey.
#[derive(Debug, Clone, Copy)]
pub struct AppSurveyRow {
    /// Application name.
    pub app: &'static str,
    /// Version surveyed.
    pub version: &'static str,
    /// What the app does.
    pub description: &'static str,
    /// C/C++ lines of code.
    pub c_loc: u64,
    /// Total lines of code.
    pub total_loc: u64,
    /// Share of execution time in native code (percent; `None` = no
    /// native code / not applicable).
    pub native_time_pct: Option<f64>,
}

/// Table 2 as published.
pub const TABLE2: &[AppSurveyRow] = &[
    AppSurveyRow {
        app: "AdAway",
        version: "3.0.2",
        description: "AD blocker",
        c_loc: 132_882,
        total_loc: 310_321,
        native_time_pct: Some(21.54),
    },
    AppSurveyRow {
        app: "Orbot",
        version: "14.1.4-noPIE",
        description: "Tor client",
        c_loc: 675_851,
        total_loc: 969_243,
        native_time_pct: Some(61.98),
    },
    AppSurveyRow {
        app: "Firefox",
        version: "40.0",
        description: "Web browser",
        c_loc: 8_094_678,
        total_loc: 15_509_820,
        native_time_pct: Some(88.27),
    },
    AppSurveyRow {
        app: "VLC Player",
        version: "1.5.1.1",
        description: "Media player",
        c_loc: 3_584_526,
        total_loc: 6_433_726,
        native_time_pct: Some(92.34),
    },
    AppSurveyRow {
        app: "Open Camera",
        version: "1.2",
        description: "Camera",
        c_loc: 0,
        total_loc: 10_336,
        native_time_pct: None,
    },
    AppSurveyRow {
        app: "osmAnd",
        version: "2.1.1",
        description: "Map/Navigation",
        c_loc: 53_695,
        total_loc: 450_573,
        native_time_pct: Some(23.86),
    },
    AppSurveyRow {
        app: "Syncthing",
        version: "0.5.0-beta5",
        description: "File synchronizer",
        c_loc: 0,
        total_loc: 59_461,
        native_time_pct: None,
    },
    AppSurveyRow {
        app: "AFWall+",
        version: "1.3.4.1",
        description: "Network traffic controller",
        c_loc: 1_514,
        total_loc: 59_741,
        native_time_pct: Some(0.30),
    },
    AppSurveyRow {
        app: "2048",
        version: "1.95",
        description: "Puzzle game",
        c_loc: 0,
        total_loc: 2_232,
        native_time_pct: None,
    },
    AppSurveyRow {
        app: "K-9 Mail",
        version: "4.804",
        description: "Email client",
        c_loc: 0,
        total_loc: 96_588,
        native_time_pct: None,
    },
    AppSurveyRow {
        app: "PDF Reader",
        version: "0.4.0",
        description: "PDF viewer",
        c_loc: 334_489,
        total_loc: 594_434,
        native_time_pct: Some(28.30),
    },
    AppSurveyRow {
        app: "ownCloud",
        version: "1.5.8",
        description: "File synchronizer",
        c_loc: 0,
        total_loc: 77_141,
        native_time_pct: None,
    },
    AppSurveyRow {
        app: "DAVdroid",
        version: "0.6.2",
        description: "Private data synchronizer",
        c_loc: 0,
        total_loc: 7_435,
        native_time_pct: None,
    },
    AppSurveyRow {
        app: "Barcode Scanner",
        version: "4.7.0",
        description: "2D/QR code scanner",
        c_loc: 0,
        total_loc: 50_201,
        native_time_pct: None,
    },
    AppSurveyRow {
        app: "SatStat",
        version: "2",
        description: "Sensor status monitor",
        c_loc: 0,
        total_loc: 7_480,
        native_time_pct: None,
    },
    AppSurveyRow {
        app: "Cool Reader",
        version: "3.1.2-72",
        description: "Ebook reader",
        c_loc: 491_556,
        total_loc: 681_001,
        native_time_pct: Some(97.73),
    },
    AppSurveyRow {
        app: "OS Monitor",
        version: "3.4.1.0",
        description: "OS monitor",
        c_loc: 5_902,
        total_loc: 74_513,
        native_time_pct: Some(4.38),
    },
    AppSurveyRow {
        app: "Orweb",
        version: "0.6.1",
        description: "Web browser",
        c_loc: 0,
        total_loc: 14_124,
        native_time_pct: None,
    },
    AppSurveyRow {
        app: "PPSSPP",
        version: "1.0.1.0",
        description: "PSP emulator",
        c_loc: 1_304_973,
        total_loc: 1_438_322,
        native_time_pct: Some(97.68),
    },
    AppSurveyRow {
        app: "Adblock Plus",
        version: "1.1.3",
        description: "AD blocker",
        c_loc: 2_102,
        total_loc: 63_779,
        native_time_pct: Some(22.83),
    },
];

/// One row of Table 5: qualitative comparison of offloading systems.
#[derive(Debug, Clone, Copy)]
pub struct SystemRow {
    /// System name.
    pub system: &'static str,
    /// Fully automatic? (`"Yes"` / `"No (Manual)"` / `"No (Annotation)"`)
    pub fully_automatic: &'static str,
    /// Offloading decision: `"Static"` or `"Dynamic"`.
    pub decision: &'static str,
    /// Requires VM support?
    pub requires_vm: bool,
    /// Target language.
    pub language: &'static str,
    /// Complexity of supported applications.
    pub complexity: &'static str,
}

/// Table 5 as published.
pub const TABLE5: &[SystemRow] = &[
    SystemRow {
        system: "Cuckoo",
        fully_automatic: "No (Manual)",
        decision: "Static",
        requires_vm: true,
        language: "Java",
        complexity: "Complex",
    },
    SystemRow {
        system: "Li et al.",
        fully_automatic: "No (Manual)",
        decision: "Static",
        requires_vm: false,
        language: "C",
        complexity: "Simple",
    },
    SystemRow {
        system: "Roam",
        fully_automatic: "No (Manual)",
        decision: "Dynamic",
        requires_vm: true,
        language: "Java",
        complexity: "Complex",
    },
    SystemRow {
        system: "MAUI",
        fully_automatic: "No (Annotation)",
        decision: "Dynamic",
        requires_vm: true,
        language: "C#",
        complexity: "Complex",
    },
    SystemRow {
        system: "ThinkAir",
        fully_automatic: "No (Annotation)",
        decision: "Dynamic",
        requires_vm: true,
        language: "Java",
        complexity: "Complex",
    },
    SystemRow {
        system: "Wang and Li",
        fully_automatic: "No (Annotation)",
        decision: "Dynamic",
        requires_vm: false,
        language: "C",
        complexity: "Simple",
    },
    SystemRow {
        system: "DiET",
        fully_automatic: "Yes",
        decision: "Static",
        requires_vm: true,
        language: "Java",
        complexity: "Simple",
    },
    SystemRow {
        system: "Chen et al.",
        fully_automatic: "Yes",
        decision: "Dynamic",
        requires_vm: true,
        language: "Java",
        complexity: "Simple",
    },
    SystemRow {
        system: "HELVM",
        fully_automatic: "Yes",
        decision: "Dynamic",
        requires_vm: true,
        language: "Java",
        complexity: "Simple",
    },
    SystemRow {
        system: "OLIE",
        fully_automatic: "Yes",
        decision: "Dynamic",
        requires_vm: true,
        language: "Java",
        complexity: "Complex",
    },
    SystemRow {
        system: "CloneCloud",
        fully_automatic: "Yes",
        decision: "Dynamic",
        requires_vm: true,
        language: "Java",
        complexity: "Complex",
    },
    SystemRow {
        system: "COMET",
        fully_automatic: "Yes",
        decision: "Dynamic",
        requires_vm: true,
        language: "Java",
        complexity: "Complex",
    },
    SystemRow {
        system: "CMcloud",
        fully_automatic: "Yes",
        decision: "Dynamic",
        requires_vm: true,
        language: "Java",
        complexity: "Complex",
    },
    SystemRow {
        system: "Native Offloader [this repro]",
        fully_automatic: "Yes",
        decision: "Dynamic",
        requires_vm: false,
        language: "C",
        complexity: "Complex",
    },
];

#[cfg(test)]
mod tests {
    #[test]
    fn table2_matches_paper_claims() {
        assert_eq!(super::TABLE2.len(), 20);
        // §1: "around one third of the 20 applications include native codes
        // more than 50% and spend more than 20% of the total execution
        // time to execute them."
        let heavy = super::TABLE2
            .iter()
            .filter(|r| {
                let ratio = r.c_loc as f64 / r.total_loc as f64;
                ratio > 0.40 && r.native_time_pct.unwrap_or(0.0) > 20.0
            })
            .count();
        assert!(heavy >= 6, "about a third of 20: {heavy}");
    }

    #[test]
    fn table5_native_offloader_is_unique() {
        // The paper's claim: only Native Offloader is fully automatic,
        // dynamic, VM-free, and handles complex C applications.
        let unique: Vec<&str> = super::TABLE5
            .iter()
            .filter(|r| {
                r.fully_automatic == "Yes"
                    && r.decision == "Dynamic"
                    && !r.requires_vm
                    && r.language == "C"
                    && r.complexity == "Complex"
            })
            .map(|r| r.system)
            .collect();
        assert_eq!(unique.len(), 1);
        assert!(unique[0].starts_with("Native Offloader"));
    }
}
