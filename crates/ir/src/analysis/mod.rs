//! Analyses used by the offload compiler: call graph (unused-function
//! removal, filter propagation), dominators and natural loops (hot-loop
//! profiling and loop-level offload candidates).

pub mod callgraph;
pub mod dom;
pub mod loops;

pub use callgraph::CallGraph;
pub use dom::DomTree;
pub use loops::{Loop, LoopForest};
