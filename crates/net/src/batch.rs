//! The §4 batching buffer.
//!
//! "The batching reduces the number of communication operations by keeping
//! the communicated data in a buffer and sending the buffer once. This
//! batching process amortizes the overheads from the communication function
//! calls." A [`BatchBuffer`] accumulates payloads and flushes them as one
//! message; without it every payload pays the link's per-message overhead
//! and latency (the ablation benchmark quantifies the difference).

use crate::channel::{Channel, Direction, MsgKind};
use crate::lz;

/// Accumulates payloads for one direction, flushing as a single transfer.
#[derive(Debug, Clone)]
pub struct BatchBuffer {
    direction: Direction,
    kind: MsgKind,
    payload: Vec<u8>,
    items: usize,
    /// Compress the batch before sending (server→mobile only, per §4).
    compress: bool,
    /// Auto-flush high-water mark; `None` means flush-on-demand only.
    flush_threshold_bytes: Option<u64>,
}

impl BatchBuffer {
    /// An empty buffer for `direction` carrying `kind` payloads, flushed
    /// only on demand (the default §4 behaviour).
    pub fn new(direction: Direction, kind: MsgKind, compress: bool) -> Self {
        BatchBuffer {
            direction,
            kind,
            payload: Vec::new(),
            items: 0,
            compress,
            flush_threshold_bytes: None,
        }
    }

    /// Cap the buffer: [`BatchBuffer::push_through`] auto-flushes once the
    /// pending payload reaches `bytes`, so a long offload with heavy
    /// output cannot grow the batch without bound.
    #[must_use]
    pub fn with_flush_threshold(mut self, bytes: u64) -> Self {
        self.flush_threshold_bytes = Some(bytes);
        self
    }

    /// The configured auto-flush threshold, if any.
    pub fn flush_threshold(&self) -> Option<u64> {
        self.flush_threshold_bytes
    }

    /// Queue a payload.
    pub fn push(&mut self, bytes: &[u8]) {
        self.payload.extend_from_slice(bytes);
        self.items += 1;
    }

    /// [`BatchBuffer::push`] plus an observe-only
    /// [`EventKind::QueueDepth`](offload_obs::EventKind) sample of the
    /// pending bytes after the append — the hook the time-series
    /// resampler reads its batch-depth curve from. Queueing behaviour is
    /// identical to the untraced path.
    pub fn push_traced(&mut self, obs: &mut dyn offload_obs::Collector, now_s: f64, bytes: &[u8]) {
        self.push(bytes);
        obs.record(
            now_s,
            offload_obs::EventKind::QueueDepth {
                queue: offload_obs::QueueLane::IoBatch,
                depth: self.pending_bytes(),
            },
        );
    }

    /// Queue a payload and auto-flush on `channel` if the pending bytes
    /// reach the configured threshold. Returns the flush result when one
    /// happened; `None` (and identical behaviour to [`BatchBuffer::push`])
    /// when no threshold is set or it has not been reached.
    pub fn push_through(
        &mut self,
        bytes: &[u8],
        channel: &mut Channel,
        start_s: f64,
    ) -> Option<(f64, u64, u64)> {
        self.push(bytes);
        match self.flush_threshold_bytes {
            Some(t) if self.pending_bytes() >= t => Some(self.flush(channel, start_s)),
            _ => None,
        }
    }

    /// Queued payload size in bytes.
    pub fn pending_bytes(&self) -> u64 {
        self.payload.len() as u64
    }

    /// Number of queued items.
    pub fn pending_items(&self) -> usize {
        self.items
    }

    /// Flush everything as one transfer on `channel` starting at
    /// `start_s`. Returns `(duration_s, raw_bytes, wire_payload_bytes)`;
    /// all zeros when nothing is pending.
    pub fn flush(&mut self, channel: &mut Channel, start_s: f64) -> (f64, u64, u64) {
        if self.payload.is_empty() {
            return (0.0, 0, 0);
        }
        let raw = self.payload.len() as u64;
        let wire = if self.compress {
            let c = lz::compress(&self.payload);
            // Fall back to raw when compression does not help.
            (c.len() as u64).min(raw)
        } else {
            raw
        };
        let duration = channel.transfer(start_s, self.direction, self.kind, raw, wire);
        self.payload.clear();
        self.items = 0;
        (duration, raw, wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;

    #[test]
    fn batching_beats_per_item_sends() {
        let link = Link::wifi_802_11ac();
        // 100 items of 64 bytes each.
        let mut batched = Channel::new(link.clone());
        let mut buf = BatchBuffer::new(Direction::MobileToServer, MsgKind::Prefetch, false);
        for _ in 0..100 {
            buf.push(&[0xAA; 64]);
        }
        let (t_batched, raw, _) = buf.flush(&mut batched, 0.0);
        assert_eq!(raw, 6400);

        let mut unbatched = Channel::new(link);
        let mut t_unbatched = 0.0;
        for _ in 0..100 {
            t_unbatched += unbatched.transfer(
                t_unbatched,
                Direction::MobileToServer,
                MsgKind::Prefetch,
                64,
                64,
            );
        }
        assert!(
            t_batched < t_unbatched / 10.0,
            "batching should amortize per-message overhead: {t_batched} vs {t_unbatched}"
        );
        assert_eq!(batched.upload_stats().messages, 1);
        assert_eq!(unbatched.upload_stats().messages, 100);
    }

    #[test]
    fn compressed_flush_shrinks_wire_bytes() {
        let mut ch = Channel::new(Link::wifi_802_11n());
        let mut buf = BatchBuffer::new(Direction::ServerToMobile, MsgKind::DirtyPage, true);
        buf.push(&vec![0u8; 4096]);
        buf.push(&vec![0u8; 4096]);
        let (_, raw, wire) = buf.flush(&mut ch, 0.0);
        assert_eq!(raw, 8192);
        assert!(wire < 256, "zero pages should compress, got {wire}");
    }

    #[test]
    fn incompressible_flush_falls_back_to_raw() {
        let mut ch = Channel::new(Link::wifi_802_11n());
        let mut buf = BatchBuffer::new(Direction::ServerToMobile, MsgKind::DirtyPage, true);
        let mut x = 0x9E37_79B9u32;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(0x0019_660D).wrapping_add(0x3C6E_F35F);
                (x >> 24) as u8
            })
            .collect();
        buf.push(&noise);
        let (_, raw, wire) = buf.flush(&mut ch, 0.0);
        assert!(wire <= raw);
    }

    #[test]
    fn threshold_auto_flushes_on_push() {
        let mut ch = Channel::new(Link::wifi_802_11ac());
        let mut buf = BatchBuffer::new(Direction::ServerToMobile, MsgKind::RemoteIo, false)
            .with_flush_threshold(256);
        assert_eq!(buf.flush_threshold(), Some(256));
        let mut flushes = 0;
        for _ in 0..10 {
            if let Some((_, raw, _)) = buf.push_through(&[1u8; 100], &mut ch, 0.0) {
                flushes += 1;
                assert!(raw >= 256, "flushed below threshold: {raw}");
                assert_eq!(buf.pending_bytes(), 0);
            }
        }
        // 10 × 100 B against a 256 B cap: flush on every 3rd push.
        assert_eq!(flushes, 3);
        assert_eq!(buf.pending_bytes(), 100);
        assert_eq!(ch.download_stats().messages, 3);
    }

    #[test]
    fn threshold_boundary_one_byte_under_at_and_over() {
        let mut ch = Channel::new(Link::wifi_802_11ac());
        let t = 256u64;

        // One byte under the threshold: no flush, payload stays queued.
        let mut buf = BatchBuffer::new(Direction::ServerToMobile, MsgKind::RemoteIo, false)
            .with_flush_threshold(t);
        assert!(buf.push_through(&[1u8; 255], &mut ch, 0.0).is_none());
        assert_eq!(buf.pending_bytes(), 255);
        assert_eq!(ch.download_stats().messages, 0);

        // The next byte lands exactly on the threshold: the flush fires
        // and ships the whole pending payload.
        let (_, raw, wire) = buf
            .push_through(&[1u8; 1], &mut ch, 0.0)
            .expect("flush exactly at the threshold");
        assert_eq!((raw, wire), (t, t));
        assert_eq!(buf.pending_bytes(), 0);
        assert_eq!(ch.download_stats().messages, 1);

        // A single message landing exactly at the threshold flushes.
        let mut buf = BatchBuffer::new(Direction::ServerToMobile, MsgKind::RemoteIo, false)
            .with_flush_threshold(t);
        let (_, raw, _) = buf
            .push_through(&[2u8; 256], &mut ch, 0.0)
            .expect("single at-threshold message flushes");
        assert_eq!(raw, t);
        assert_eq!(buf.pending_bytes(), 0);

        // A single message one byte over the threshold flushes all of it.
        let mut buf = BatchBuffer::new(Direction::ServerToMobile, MsgKind::RemoteIo, false)
            .with_flush_threshold(t);
        let (_, raw, _) = buf
            .push_through(&[3u8; 257], &mut ch, 0.0)
            .expect("single over-threshold message flushes");
        assert_eq!(raw, t + 1);
        assert_eq!(buf.pending_bytes(), 0);

        // A single message one byte under stays queued until demanded.
        let mut buf = BatchBuffer::new(Direction::ServerToMobile, MsgKind::RemoteIo, false)
            .with_flush_threshold(t);
        assert!(buf.push_through(&[4u8; 255], &mut ch, 0.0).is_none());
        assert_eq!(buf.pending_bytes(), t - 1);
        let (_, raw, _) = buf.flush(&mut ch, 0.0);
        assert_eq!(raw, t - 1);
    }

    #[test]
    fn no_threshold_never_auto_flushes() {
        // Default mode must behave exactly like plain push: unbounded
        // accumulation, one flush on demand.
        let mut ch = Channel::new(Link::wifi_802_11ac());
        let mut buf = BatchBuffer::new(Direction::MobileToServer, MsgKind::Prefetch, false);
        for _ in 0..50 {
            assert!(buf.push_through(&[9u8; 128], &mut ch, 0.0).is_none());
        }
        assert_eq!(buf.pending_bytes(), 50 * 128);
        assert_eq!(buf.pending_items(), 50);
        assert!(ch.events().is_empty());
        let (_, raw, _) = buf.flush(&mut ch, 0.0);
        assert_eq!(raw, 50 * 128);
        assert_eq!(ch.upload_stats().messages, 1);
    }

    #[test]
    fn empty_flush_is_free() {
        let mut ch = Channel::new(Link::wifi_802_11n());
        let mut buf = BatchBuffer::new(Direction::MobileToServer, MsgKind::Control, false);
        let (t, raw, wire) = buf.flush(&mut ch, 0.0);
        assert_eq!((t, raw, wire), (0.0, 0, 0));
        assert!(ch.events().is_empty());
    }

    #[test]
    fn traced_push_samples_depth_without_changing_behaviour() {
        use offload_obs::{EventKind, QueueLane, TraceCollector};
        let mut obs = TraceCollector::new();
        let mut traced = BatchBuffer::new(Direction::ServerToMobile, MsgKind::RemoteIo, false);
        let mut plain = BatchBuffer::new(Direction::ServerToMobile, MsgKind::RemoteIo, false);
        traced.push_traced(&mut obs, 0.0, &[1u8; 10]);
        traced.push_traced(&mut obs, 0.1, &[2u8; 5]);
        plain.push(&[1u8; 10]);
        plain.push(&[2u8; 5]);
        assert_eq!(traced.pending_bytes(), plain.pending_bytes());
        assert_eq!(traced.pending_items(), plain.pending_items());
        let depths: Vec<u64> = obs
            .records()
            .iter()
            .filter_map(|r| match r.kind {
                EventKind::QueueDepth {
                    queue: QueueLane::IoBatch,
                    depth,
                } => Some(depth),
                _ => None,
            })
            .collect();
        assert_eq!(depths, vec![10, 15]);
    }
}
