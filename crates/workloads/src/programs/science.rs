//! Scientific-computing miniatures: `179.art`, `183.equake`, `188.ammp`,
//! `433.milc`, `470.lbm`.
//!
//! `art`, `equake`, `milc` and `ammp` are the near-ideal programs of
//! Fig. 6: heavy floating-point loops over modest working sets. `ammp`
//! contributes the suite's only *two-target* program (`AMMPmonitor` at
//! 13.5% coverage plus `tpac` at 85.6%). `equake` and `lbm` put their hot
//! loop directly in `main` — the targets the paper lists as
//! `main_for.cond*`, which this reproduction reaches through loop
//! outlining. `lbm` carries the suite's largest traffic (643.6 MB) and
//! sits in the slow-network refusal set.

use crate::{PaperRow, WorkloadSpec};
use native_offloader::WorkloadInput;

const ART_SRC: &str = r#"
// 179.art miniature: adaptive-resonance image recognition (F1 layer).
double weights[4096];
double input[64];
double f1[64];
int seed;

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

double scan_recognize(int passes) {
    int p; int i; int j;
    double score = 0.0;
    for (p = 0; p < passes; p++) {
        for (i = 0; i < 64; i++) {
            double act = 0.0;
            for (j = 0; j < 64; j++) act += weights[i * 64 + j] * input[j];
            f1[i] = act / (1.0 + act * act * 0.001);
        }
        for (i = 0; i < 64; i++) score += f1[i] * 0.015625;
        input[p % 64] = input[p % 64] * 0.99 + 0.01;
    }
    return score;
}

int main() {
    int passes; int i;
    scanf("%d", &passes);
    seed = 3;
    for (i = 0; i < 4096; i++) weights[i] = (double)(rnd() % 100) * 0.01;
    for (i = 0; i < 64; i++) input[i] = (double)(rnd() % 100) * 0.01;
    double s = scan_recognize(passes);
    printf("recognized %.4f\n", s);
    return 0;
}
"#;

/// The `179.art` miniature.
pub fn art() -> WorkloadSpec {
    WorkloadSpec {
        name: "179.art",
        short: "art",
        description: "neural-network image recognition (SPEC CPU2000)",
        source: ART_SRC,
        profile_input: || WorkloadInput::from_stdin("300\n"),
        eval_input: || WorkloadInput::from_stdin("700\n"),
        expected_target: "scan_recognize",
        paper: PaperRow {
            loc_k: 5.7,
            exec_time_s: 325.5,
            offloaded_fns: (7, 26),
            referenced_gv: (52, 79),
            fn_ptr_uses: 0,
            target: "scan_recognize",
            coverage_pct: 85.44,
            invocations: 1,
            traffic_mb_per_inv: 16.4,
            refused_on_slow: false,
        },
    }
}

const EQUAKE_SRC: &str = r#"
// 183.equake miniature: seismic wave propagation; the hot stencil loop
// lives directly in main (the paper's target main_for.cond548) and is
// outlined by the compiler.
double disp[4096];
double vel[4096];
double stiff[4096];
int seed;

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

int main() {
    int steps; int t; int i;
    scanf("%d", &steps);
    seed = 11;
    for (i = 0; i < 4096; i++) {
        disp[i] = (double)(rnd() % 100) * 0.001;
        vel[i] = 0.0;
        stiff[i] = 0.9 + (double)(rnd() % 100) * 0.001;
    }
    for (t = 0; t < steps; t++) {
        for (i = 1; i < 4095; i++) {
            double lap = disp[i - 1] - 2.0 * disp[i] + disp[i + 1];
            vel[i] = vel[i] * 0.999 + lap * stiff[i] * 0.5;
        }
        for (i = 1; i < 4095; i++) disp[i] += vel[i] * 0.1;
    }
    double sum = 0.0;
    for (i = 0; i < 4096; i++) sum += disp[i];
    printf("wave %.4f\n", sum);
    return 0;
}
"#;

/// The `183.equake` miniature.
pub fn equake() -> WorkloadSpec {
    WorkloadSpec {
        name: "183.equake",
        short: "equake",
        description: "seismic wave propagation stencil (SPEC CPU2000)",
        source: EQUAKE_SRC,
        profile_input: || WorkloadInput::from_stdin("60\n"),
        eval_input: || WorkloadInput::from_stdin("140\n"),
        expected_target: "main_loop0",
        paper: PaperRow {
            loc_k: 1.0,
            exec_time_s: 334.0,
            offloaded_fns: (5, 28),
            referenced_gv: (83, 104),
            fn_ptr_uses: 0,
            target: "main_for.cond548",
            coverage_pct: 99.44,
            invocations: 1,
            traffic_mb_per_inv: 16.5,
            refused_on_slow: false,
        },
    }
}

const AMMP_SRC: &str = r#"
// 188.ammp miniature: molecular dynamics with TWO offload targets, like
// the paper: AMMPmonitor (invoked twice, low coverage) and tpac (the main
// dynamics, high coverage).
typedef double (*POT)(double);

double pos[3072];
double force[3072];
int ptype[1024];
int seed;

// Potential kernels dispatched per atom-pair type through a function-
// pointer table, like ammp's AMMPnote/potential vectors. The miniature's
// input only has type-0 (pair) atoms.
double pot_pair(double r2) { return 1.0 / (r2 * r2); }
double pot_soft(double r2) { return 1.0 / (r2 * r2 + 0.5); }

POT potentials[2] = { pot_pair, pot_soft };

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

double AMMPmonitor(int reps) {
    int r; int i;
    double energy = 0.0;
    for (r = 0; r < reps; r++)
        for (i = 0; i < 3072; i++)
            energy += pos[i] * pos[i] * 0.5 + force[i] * force[i] * 0.125;
    return energy;
}

double tpac(int steps) {
    int t; int i;
    double virial = 0.0;
    for (t = 0; t < steps; t++) {
        for (i = 0; i < 1024; i++) {
            double dx = pos[i * 3] - pos[((i + 7) % 1024) * 3];
            double dy = pos[i * 3 + 1] - pos[((i + 7) % 1024) * 3 + 1];
            double r2 = dx * dx + dy * dy + 0.1;
            POT pot = (potentials)[ptype[i]];
            double f = pot(r2);
            force[i * 3] += f * dx;
            force[i * 3 + 1] += f * dy;
            virial += f;
        }
        for (i = 0; i < 3072; i++) pos[i] += force[i] * 0.0001;
    }
    return virial;
}

int main() {
    int steps; int i;
    scanf("%d", &steps);
    seed = 17;
    for (i = 0; i < 3072; i++) {
        pos[i] = (double)(rnd() % 1000) * 0.01;
        force[i] = 0.0;
    }
    double e0 = AMMPmonitor(steps / 2);
    double v = tpac(steps);
    double e1 = AMMPmonitor(steps / 2);
    printf("energy %.3f %.3f virial %.3f\n", e0, e1, v);
    return 0;
}
"#;

/// The `188.ammp` miniature.
pub fn ammp() -> WorkloadSpec {
    WorkloadSpec {
        name: "188.ammp",
        short: "ammp",
        description: "computational chemistry with two offload targets (SPEC CPU2000)",
        source: AMMP_SRC,
        profile_input: || WorkloadInput::from_stdin("60\n"),
        eval_input: || WorkloadInput::from_stdin("130\n"),
        expected_target: "tpac",
        paper: PaperRow {
            loc_k: 9.8,
            exec_time_s: 878.0,
            offloaded_fns: (17, 179),
            referenced_gv: (324, 333),
            fn_ptr_uses: 66,
            target: "tpac",
            coverage_pct: 85.60,
            invocations: 1,
            traffic_mb_per_inv: 17.6,
            refused_on_slow: false,
        },
    }
}

const MILC_SRC: &str = r#"
// 433.milc miniature: lattice QCD su3 updates, two invocations of the
// update() target like the paper.
double lattice[4096];
double staple[4096];
int seed;

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

double update(int sweeps) {
    int s; int i;
    double action = 0.0;
    for (s = 0; s < sweeps; s++) {
        for (i = 0; i < 4096; i++) {
            int up = (i + 64) % 4096;
            int dn = (i + 4096 - 64) % 4096;
            staple[i] = lattice[up] * 0.4 + lattice[dn] * 0.4 + lattice[(i + 1) % 4096] * 0.2;
        }
        for (i = 0; i < 4096; i++) {
            lattice[i] = lattice[i] * 0.92 + staple[i] * 0.08;
            action += lattice[i] * staple[i];
        }
    }
    return action;
}

int main() {
    int sweeps; int i;
    scanf("%d", &sweeps);
    seed = 29;
    for (i = 0; i < 4096; i++) lattice[i] = (double)(rnd() % 1000) * 0.002;
    double a1 = update(sweeps);
    double a2 = update(sweeps);
    printf("action %.3f %.3f\n", a1, a2);
    return 0;
}
"#;

/// The `433.milc` miniature.
pub fn milc() -> WorkloadSpec {
    WorkloadSpec {
        name: "433.milc",
        short: "milc",
        description: "lattice quantum chromodynamics (SPEC CPU2006)",
        source: MILC_SRC,
        profile_input: || WorkloadInput::from_stdin("30\n"),
        eval_input: || WorkloadInput::from_stdin("70\n"),
        expected_target: "update",
        paper: PaperRow {
            loc_k: 9.6,
            exec_time_s: 365.8,
            offloaded_fns: (61, 235),
            referenced_gv: (445, 493),
            fn_ptr_uses: 6,
            target: "update",
            coverage_pct: 96.21,
            invocations: 2,
            traffic_mb_per_inv: 13.4,
            refused_on_slow: false,
        },
    }
}

const LBM_SRC: &str = r#"
// 470.lbm miniature: lattice-Boltzmann fluid dynamics over a double
// buffer; the hot time-step loop lives in main (the paper's
// main_for.cond) and touches the biggest working set of the suite.
double gridA[24576];
double gridB[24576];
int seed;

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

int main() {
    int steps; int t; int i;
    scanf("%d", &steps);
    seed = 5;
    for (i = 0; i < 24576; i++) gridA[i] = (double)(rnd() % 100) * 0.01;
    for (t = 0; t < steps; t++) {
        for (i = 64; i < 24512; i++) {
            double v = gridA[i] * 0.6 + gridA[i - 64] * 0.15 + gridA[i + 64] * 0.15
                     + gridA[i - 1] * 0.05 + gridA[i + 1] * 0.05;
            gridB[i] = v * 0.9999;
        }
        for (i = 64; i < 24512; i++) gridA[i] = gridB[i];
    }
    double mass = 0.0;
    for (i = 0; i < 24576; i++) mass += gridA[i];
    printf("mass %.4f\n", mass);
    return 0;
}
"#;

/// The `470.lbm` miniature.
pub fn lbm() -> WorkloadSpec {
    WorkloadSpec {
        name: "470.lbm",
        short: "lbm",
        description: "lattice-Boltzmann fluid dynamics (SPEC CPU2006)",
        source: LBM_SRC,
        profile_input: || WorkloadInput::from_stdin("10\n"),
        eval_input: || WorkloadInput::from_stdin("18\n"),
        expected_target: "main_loop0",
        paper: PaperRow {
            loc_k: 0.9,
            exec_time_s: 1444.9,
            offloaded_fns: (1, 19),
            referenced_gv: (16, 20),
            fn_ptr_uses: 0,
            target: "main_for.cond",
            coverage_pct: 99.70,
            invocations: 1,
            traffic_mb_per_inv: 643.6,
            refused_on_slow: true,
        },
    }
}
