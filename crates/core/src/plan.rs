//! The offload plan: what the compiler decided, and why.

use offload_ir::analysis::PageFootprint;
use offload_ir::{FuncId, Type};

/// One row of the static performance estimation (the paper's Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateRow {
    /// Candidate name (function, or `parent_loopN` for an outlined loop).
    pub name: String,
    /// Measured mobile execution time over the profiling run, seconds.
    pub exec_time_s: f64,
    /// Invocation count in the profiling run.
    pub invocations: u64,
    /// Memory footprint (pages touched × page size), bytes.
    pub mem_bytes: u64,
    /// Ideal gain `Tm · (1 − 1/R)`, seconds.
    pub t_ideal_s: f64,
    /// Communication cost `2 · M/BW · N`, seconds.
    pub t_comm_s: f64,
    /// Expected gain `Tg = Tideal − Tc`, seconds (Equation 1).
    pub t_gain_s: f64,
    /// `true` if the function filter ruled the candidate machine specific.
    pub machine_specific: bool,
    /// `true` if the candidate was selected as an offload target.
    pub selected: bool,
}

/// One offload target in the generated program.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadTask {
    /// Task id carried in offload requests (nonzero).
    pub id: u32,
    /// The dispatcher function (original id; call sites are unchanged).
    pub dispatcher: FuncId,
    /// The extracted local body the dispatcher falls back to.
    pub local_func: FuncId,
    /// Source-level name of the target.
    pub name: String,
    /// Parameter types (marshalled through the offload request).
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Profile-derived per-invocation mobile time, seconds.
    pub tm_per_invocation_s: f64,
    /// Profile-derived memory footprint, bytes.
    pub mem_bytes: u64,
    /// Pages the profiler saw the target touch (the §4 prefetch set).
    pub prefetch_pages: Vec<u64>,
}

/// A static memory-access certificate for one offload region, produced by
/// the interprocedural mod/ref + page-footprint analysis and consumed by
/// the runtime session. All page numbers are UVA page indices
/// (`addr / PAGE_SIZE`).
#[derive(Debug, Clone, Default)]
pub struct RegionCertificate {
    /// Task id this certificate covers (matches [`OffloadTask::id`]).
    pub task: u32,
    /// Pages the region may read (definitely_read ∪ may_read).
    pub read: PageFootprint,
    /// Pages the region may write.
    pub write: PageFootprint,
    /// Global pages proven read-only across the region: present in the
    /// unified globals segment, never in any may-write set. The session
    /// skips baseline snapshots and delta diffs for these.
    pub proven_readonly: Vec<u64>,
}

impl RegionCertificate {
    /// `true` if the region may touch `page` at all (read or write).
    pub fn may_access(&self, page: u64) -> bool {
        self.read.contains(page) || self.write.contains(page)
    }

    /// `true` if the region may write `page`.
    pub fn may_write(&self, page: u64) -> bool {
        self.write.contains(page)
    }

    /// `true` if both footprints are exact page sets (no coarse ranges,
    /// no unknown widening) — the precondition for the runtime to act on
    /// the certificate rather than just report it.
    pub fn is_precise(&self) -> bool {
        self.read.is_exact() && self.write.is_exact()
    }

    /// Bytes covered by the union of the precise read and write pages
    /// (only meaningful when [`is_precise`](Self::is_precise)).
    pub fn footprint_bytes(&self, page_size: u64) -> u64 {
        let mut union: Vec<u64> = self.read.pages().to_vec();
        for &p in self.write.pages() {
            if !union.contains(&p) {
                union.push(p);
            }
        }
        union.len() as u64 * page_size
    }
}

/// Compiler statistics (the per-program columns of Table 4).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompileStats {
    /// Functions in the original module.
    pub total_functions: usize,
    /// Functions offloaded to the server partition (reachable from the
    /// offload targets and kept on the server).
    pub offloaded_functions: usize,
    /// Globals in the module.
    pub total_globals: usize,
    /// Globals reallocated onto the UVA space (referenced globals, §3.2).
    pub unified_globals: usize,
    /// Indirect-call sites wrapped with function-pointer mapping (§3.4).
    pub fn_ptr_sites: usize,
    /// I/O call sites replaced with remote I/O (§3.4).
    pub remote_io_sites: usize,
    /// Machine-specific functions found by the filter (§3.1).
    pub machine_specific_functions: usize,
    /// Function bodies removed from the server partition (§3.3).
    pub removed_server_functions: usize,
    /// `malloc`/`free` sites rewritten to `u_malloc`/`u_free` (§3.2).
    pub heap_sites_unified: usize,
    /// Structs whose server layout differed from the unified layout and
    /// were realigned (Fig. 4).
    pub structs_realigned: usize,
    /// Padding bytes inserted by realignment, summed over structs.
    pub realign_padding_bytes: u64,
    /// Loops outlined into offloadable functions.
    pub loops_outlined: usize,
    /// Error-severity diagnostics from the static-analysis phase.
    pub analysis_errors: usize,
    /// Warning-severity diagnostics from the static-analysis phase.
    pub analysis_warnings: usize,
    /// Indirect-call sites whose target set points-to analysis bounded.
    pub indirect_sites_bounded: usize,
    /// Indirect-call sites with unbounded (or empty) target sets —
    /// conservatively machine specific.
    pub indirect_sites_unbounded: usize,
    /// Percentage of profiled execution time covered by the selected
    /// targets (Table 4 "Cover.").
    pub coverage_percent: f64,
    /// Offload regions whose certificate is precise (exact page sets on
    /// both the read and write side).
    pub certified_regions: usize,
    /// OFF030–OFF033 diagnostics raised by the certification pass (kept
    /// separate from `analysis_warnings`, which counts the portability
    /// lints only).
    pub certificate_warnings: usize,
    /// Interprocedural mod/ref solver rounds across all SCCs.
    pub modref_rounds: u32,
}

/// Everything the runtime needs to execute the partitioned program.
#[derive(Debug, Clone, Default)]
pub struct OffloadPlan {
    /// Selected offload targets.
    pub tasks: Vec<OffloadTask>,
    /// The full estimation table (Table 3).
    pub estimates: Vec<EstimateRow>,
    /// Compiler statistics (Table 4).
    pub stats: CompileStats,
    /// Per-task memory-access certificates (empty when certification is
    /// off or the analysis could not run).
    pub certificates: Vec<RegionCertificate>,
}

impl OffloadPlan {
    /// Look up a task by id.
    pub fn task(&self, id: u32) -> Option<&OffloadTask> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Look up a task's certificate by task id.
    pub fn certificate(&self, id: u32) -> Option<&RegionCertificate> {
        self.certificates.iter().find(|c| c.task == id)
    }

    /// Look up a task by target name.
    pub fn task_by_name(&self, name: &str) -> Option<&OffloadTask> {
        self.tasks.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_lookup() {
        let task = OffloadTask {
            id: 1,
            dispatcher: FuncId(0),
            local_func: FuncId(1),
            name: "getAITurn".into(),
            params: vec![],
            ret: Type::F64,
            tm_per_invocation_s: 1.0,
            mem_bytes: 4096,
            prefetch_pages: vec![1, 2],
        };
        let plan = OffloadPlan {
            tasks: vec![task],
            ..Default::default()
        };
        assert_eq!(plan.task(1).unwrap().name, "getAITurn");
        assert!(plan.task(9).is_none());
        assert!(plan.task_by_name("getAITurn").is_some());
    }
}
