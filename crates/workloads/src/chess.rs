//! The chess game running example (Table 1, Table 3, Fig. 3).
//!
//! The paper opens with a chess application: movement computation on a
//! Galaxy S5 is >5× slower than on a desktop at every difficulty level
//! (Table 1), and §3 walks the compiler through it — `getAITurn` (with a
//! remotable `printf` and the `evals` function-pointer table) is offloaded,
//! `getPlayerTurn` (interactive `scanf`) pins its callers to the phone,
//! and the estimator's Table 3 separates `for_i` from the too-chatty
//! `for_j`.
//!
//! This miniature keeps all of those landmarks: the `Move`/`Piece` structs
//! (the Fig. 4 layout demo), the `u_malloc`-able `board`, the `evals`
//! table, and a search whose cost grows ~3× per difficulty level like
//! Table 1's measurements.

use native_offloader::WorkloadInput;

/// The chess MiniC source (Fig. 3(a), elaborated to a runnable game).
pub const SOURCE: &str = r#"
typedef struct { char from; char to; double score; } Move;
typedef struct { char loc; char owner; char type; } Piece;
typedef double (*EVALFUNC)(Piece*);

int maxDepth;
Piece *board;

double evalEmpty(Piece *p)  { return 0.0; }
double evalPawn(Piece *p)   { return 1.0 + (double)(p->loc % 8) * 0.01; }
double evalKnight(Piece *p) { return 3.0 + (double)(p->loc % 5) * 0.02; }
double evalBishop(Piece *p) { return 3.1 + (double)(p->loc % 7) * 0.02; }
double evalRook(Piece *p)   { return 5.0 + (double)(p->loc % 3) * 0.05; }
double evalQueen(Piece *p)  { return 9.0 + (double)(p->loc % 9) * 0.03; }
double evalKing(Piece *p)   { return 200.0; }

EVALFUNC evals[7] = { evalEmpty, evalPawn, evalKnight, evalBishop,
                      evalRook, evalQueen, evalKing };

double search(int depth) {
    if (depth <= 0) return 1.0;
    double s = 0.0;
    int k;
    for (k = 0; k < 3; k++) s += search(depth - 1) * 0.33 + (double)(k % 2);
    return s;
}

Move getAITurn() {
    Move mv;
    int i; int j;
    mv.score = 0.0;
    for (i = 0; i < maxDepth; i++) {
        for (j = 0; j < 64; j++) {
            char pieceType = board[j].type;
            EVALFUNC eval = evals[pieceType % 7];
            mv.score += eval(&board[j]);
        }
    }
    mv.score += search(maxDepth);
    printf("%f\n", mv.score);
    mv.from = (char)((int)mv.score % 64);
    mv.to = (char)(((int)mv.score / 64) % 64);
    return mv;
}

Move getPlayerTurn() {
    Move mv;
    int f; int t;
    scanf("%d %d", &f, &t);
    mv.from = (char)f;
    mv.to = (char)t;
    mv.score = 0.0;
    return mv;
}

void applyMove(Move *mv) {
    Piece tmp;
    int f = mv->from;
    int t = mv->to;
    if (f < 0) f = -f;
    if (t < 0) t = -t;
    tmp = board[f % 64];
    board[t % 64] = tmp;
    board[f % 64].type = 0;
}

void runGame(int turns) {
    int m;
    Move mv;
    for (m = 0; m < turns; m++) {
        mv = getPlayerTurn();
        applyMove(&mv);
        mv = getAITurn();
        applyMove(&mv);
    }
}

int main() {
    int turns; int j;
    scanf("%d %d", &maxDepth, &turns);
    board = (Piece*)malloc(sizeof(Piece) * 64);
    for (j = 0; j < 64; j++) {
        board[j].loc = (char)j;
        board[j].owner = (char)(j / 32);
        board[j].type = (char)(j % 7);
    }
    runGame(turns);
    free((char*)board);
    return 0;
}
"#;

/// Input for a game at `difficulty` playing `turns` moves.
pub fn input(difficulty: u32, turns: u32) -> WorkloadInput {
    let mut stdin = format!("{difficulty} {turns}\n");
    for m in 0..turns {
        stdin.push_str(&format!("{} {}\n", (m * 13 + 5) % 64, (m * 29 + 11) % 64));
    }
    WorkloadInput::from_stdin(stdin)
}

/// The Table 1 difficulty sweep.
pub const TABLE1_DIFFICULTIES: [u32; 5] = [7, 8, 9, 10, 11];

#[cfg(test)]
mod tests {
    use native_offloader::{Offloader, SessionConfig};

    #[test]
    fn chess_compiles_and_selects_get_ai_turn() {
        let app = Offloader::new()
            .compile_source(super::SOURCE, "chess", &super::input(9, 2))
            .unwrap();
        assert!(
            app.plan.task_by_name("getAITurn").is_some(),
            "estimates: {:#?}",
            app.plan.estimates
        );
        assert!(app.plan.task_by_name("getPlayerTurn").is_none());
        assert!(app.plan.task_by_name("runGame").is_none());
    }

    #[test]
    fn chess_offloaded_game_matches_local() {
        let app = Offloader::new()
            .compile_source(super::SOURCE, "chess", &super::input(9, 2))
            .unwrap();
        let input = super::input(10, 3);
        let local = app.run_local(&input).unwrap();
        let off = app
            .run_offloaded(&input, &SessionConfig::fast_network())
            .unwrap();
        assert_eq!(local.console, off.console);
        assert_eq!(off.offloads_performed, 3, "one offload per AI turn");
        assert!(
            off.fn_map_translations > 0,
            "evals table is translated on the server"
        );
    }
}
