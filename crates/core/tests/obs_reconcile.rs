//! Trace/report reconciliation on real miniatures: everything the
//! `RunReport` counts must be re-derivable from the observability event
//! stream — same counters exactly, same Fig. 7 lanes bit-for-bit.
//!
//! One compute-heavy program (456.hmmer) and one traffic-heavy program
//! (164.gzip) carry the check; the offload is forced (dynamic estimation
//! off) so both exercise the full session life-cycle: prefetch, demand
//! faults, remote I/O, fn-ptr translation, dirty write-back.

use native_offloader::runtime::derive::{check_reconciliation, derive_run};
use native_offloader::SessionConfig;
use offload_obs::TraceCollector;
use offload_workloads::by_short_name;

fn traced_forced_run(short: &str) -> (TraceCollector, native_offloader::RunReport, SessionConfig) {
    let w = by_short_name(short).expect("workload exists");
    let app = w.compile().expect("compiles");
    let mut cfg = SessionConfig::fast_network();
    cfg.dynamic_estimation = false; // force the full offload session
    let mut obs = TraceCollector::new();
    let rep = app
        .run_offloaded_traced(&(w.eval_input)(), &cfg, &mut obs)
        .expect("runs");
    assert_eq!(obs.dropped(), 0, "ring must hold the whole run");
    (obs, rep, cfg)
}

fn assert_counts_match(short: &str) {
    let (obs, rep, cfg) = traced_forced_run(short);
    let d = derive_run(&obs.records(), &cfg);

    // The event-derived counters equal the legacy RunReport counters.
    assert_eq!(
        d.demand_page_fetches, rep.demand_page_fetches,
        "{short}: demand faults"
    );
    assert_eq!(
        d.dirty_pages_written_back, rep.dirty_pages_written_back,
        "{short}: dirty write-back"
    );
    assert_eq!(
        d.fn_map_translations, rep.fn_map_translations,
        "{short}: fn-ptr translations"
    );
    assert_eq!(
        d.remote_io_calls, rep.remote_io_calls,
        "{short}: remote I/O"
    );
    assert_eq!(
        d.offloads_performed, rep.offloads_performed,
        "{short}: offloads"
    );
    assert_eq!(
        d.prefetched_pages, rep.prefetched_pages,
        "{short}: prefetched pages"
    );

    // The Fig. 7 lanes account for the whole run.
    let total = rep.breakdown.total();
    assert!(
        (total - rep.total_seconds).abs() <= 1e-9 * rep.total_seconds.max(1e-9),
        "{short}: breakdown {total} vs total {t}",
        t = rep.total_seconds
    );

    // And the full bit-identity check passes.
    check_reconciliation(&obs.records(), &rep, &cfg).expect("bit-identical derivation");
}

#[test]
fn compute_heavy_miniature_reconciles() {
    assert_counts_match("hmmer");
}

#[test]
fn traffic_heavy_miniature_reconciles() {
    assert_counts_match("gzip");
}

/// The session forcibly offloads nothing when the estimator refuses; the
/// trace still reconciles (decision events with `accepted: false`, no
/// offload spans).
#[test]
fn refused_run_reconciles_too() {
    let w = by_short_name("gzip").expect("workload exists");
    let app = w.compile().expect("compiles");
    let cfg = SessionConfig::slow_network(); // gzip is refused on slow
    let mut obs = TraceCollector::new();
    let rep = app
        .run_offloaded_traced(&(w.eval_input)(), &cfg, &mut obs)
        .expect("runs");
    assert_eq!(obs.dropped(), 0);
    let d = derive_run(&obs.records(), &cfg);
    assert_eq!(d.offloads_refused, rep.offloads_refused);
    check_reconciliation(&obs.records(), &rep, &cfg).expect("bit-identical derivation");
}
