//! The dynamic soundness oracle for region certificates.
//!
//! Certificates are pure metadata: consuming them (restricted present-page
//! advertisement, baseline-snapshot skipping, predictor seeding, certified
//! estimator footprints) must never change program results. This sweep runs
//! all 18 miniatures (the Table 4 suite plus the chess acceptance program)
//! over both link profiles and every stream mode, once with certificates
//! off (the baseline) and once with them consumed, and asserts:
//!
//! * console output, exit codes and every result-bearing counter match;
//! * the in-session oracle never traps — every fault and dirty page the
//!   server produced was inside the certified footprint;
//! * the savings are real, not vacuous: baselines are actually skipped,
//!   faults are actually checked, and the certified present-page
//!   advertisement shrinks upload wire bytes on most of the suite.

use std::sync::Arc;

use native_offloader::WorkloadInput;
use native_offloader::{CompiledApp, Offloader, PageHistory, SessionConfig, StreamMode};
use offload_obs::TraceCollector;

/// Fault-heavy session on the given link: the offload is forced and
/// initialization prefetch is off, so copy-on-demand carries the whole
/// working set and the fault oracle sees every page crossing.
fn fault_heavy(
    slow: bool,
    mode: StreamMode,
    history: Option<Arc<PageHistory>>,
    certificates: bool,
) -> SessionConfig {
    let mut cfg = if slow {
        SessionConfig::slow_network()
    } else {
        SessionConfig::fast_network()
    };
    cfg.dynamic_estimation = false;
    cfg.prefetch = false;
    cfg.stream_mode = mode;
    cfg.page_history = history;
    cfg.certificates = certificates;
    cfg
}

/// The 18-program sweep set: the suite miniatures plus the chess program.
fn sweep_apps() -> Vec<(String, CompiledApp, WorkloadInput)> {
    let mut apps: Vec<(String, CompiledApp, WorkloadInput)> = Vec::new();
    for w in offload_workloads::all() {
        let app = w.compile().expect("compiles");
        let input = (w.eval_input)();
        apps.push((w.name.to_string(), app, input));
    }
    let chess_input = offload_workloads::chess::input(9, 2);
    let chess = Offloader::new()
        .compile_source(offload_workloads::chess::SOURCE, "chess", &chess_input)
        .expect("chess compiles");
    apps.push(("chess".to_string(), chess, chess_input));
    assert_eq!(apps.len(), 18, "the sweep must cover all 18 programs");
    apps
}

/// Run the certified-vs-baseline comparison for one program set over the
/// given links/modes, returning the suite-wide oracle totals.
fn run_sweep(
    apps: Vec<(String, CompiledApp, WorkloadInput)>,
    links: &[bool],
    modes: &[StreamMode],
) -> (u64, u64, u64, usize) {
    let mut total_baselines_skipped = 0u64;
    let mut total_faults_checked = 0u64;
    let mut total_dirty_checked = 0u64;
    let mut workloads_with_savings = 0usize;

    for (name, app, input) in apps {
        // Train the history predictor once per workload on a synchronous
        // certificate-free run; both links reuse the same table.
        let mut obs = TraceCollector::with_capacity(1 << 20);
        let _ = app
            .run_offloaded_traced(
                &input,
                &fault_heavy(false, StreamMode::Off, None, false),
                &mut obs,
            )
            .expect("training run");
        let history = Arc::new(PageHistory::from_records(&obs.records()));
        let mut saved_wire = false;

        for &slow in links {
            for &mode in modes {
                let hist = (mode != StreamMode::Off).then(|| history.clone());
                let base = app
                    .run_offloaded(&input, &fault_heavy(slow, mode, hist.clone(), false))
                    .expect("baseline run");
                let cert = app
                    .run_offloaded(&input, &fault_heavy(slow, mode, hist, true))
                    .expect("certified run must not trap");
                let tag = format!(
                    "{name} (link={}, mode={})",
                    if slow { "slow" } else { "fast" },
                    mode.name()
                );

                // Soundness: certificates must be invisible in results.
                assert_eq!(cert.console, base.console, "{tag}: console diverged");
                assert_eq!(cert.exit_code, base.exit_code, "{tag}: exit diverged");
                assert_eq!(
                    cert.offload_attempts, base.offload_attempts,
                    "{tag}: attempt count diverged"
                );
                assert_eq!(
                    cert.offloads_performed, base.offloads_performed,
                    "{tag}: offload count diverged"
                );
                assert_eq!(
                    cert.offloads_refused, base.offloads_refused,
                    "{tag}: refusal count diverged"
                );
                assert_eq!(
                    cert.dirty_pages_written_back, base.dirty_pages_written_back,
                    "{tag}: dirty page count diverged"
                );
                assert_eq!(
                    cert.remote_io_calls, base.remote_io_calls,
                    "{tag}: remote I/O count diverged"
                );

                // The baseline never consults the oracle.
                assert_eq!(base.oracle_faults_checked, 0, "{tag}");
                assert_eq!(base.oracle_dirty_checked, 0, "{tag}");
                assert_eq!(base.baseline_snapshots_skipped, 0, "{tag}");

                // With streaming off nothing speculative moves, so the
                // certified advertisement can only shrink the upload.
                if mode == StreamMode::Off {
                    assert!(
                        cert.upload.wire_bytes <= base.upload.wire_bytes,
                        "{tag}: certified upload grew: {} vs {}",
                        cert.upload.wire_bytes,
                        base.upload.wire_bytes
                    );
                    if !slow && cert.upload.wire_bytes < base.upload.wire_bytes {
                        saved_wire = true;
                    }
                }

                total_baselines_skipped += cert.baseline_snapshots_skipped;
                total_faults_checked += cert.oracle_faults_checked;
                total_dirty_checked += cert.oracle_dirty_checked;
            }
        }
        if saved_wire {
            workloads_with_savings += 1;
        }
    }
    (
        total_baselines_skipped,
        total_faults_checked,
        total_dirty_checked,
        workloads_with_savings,
    )
}

const ALL_MODES: [StreamMode; 4] = [
    StreamMode::Off,
    StreamMode::Static,
    StreamMode::Stride,
    StreamMode::History,
];

/// The full 18 x 2 x 4 sweep — several minutes of simulated execution, so
/// it runs in the release-mode CI pass only; debug builds get the
/// [`certificate_smoke`] subset below.
#[test]
#[cfg_attr(debug_assertions, ignore = "full sweep runs in the release pass")]
fn certificates_are_sound_across_links_and_stream_modes() {
    let (skipped, faults, dirty, savings) = run_sweep(sweep_apps(), &[false, true], &ALL_MODES);

    // The sweep must exercise the oracle, not just agree vacuously.
    assert!(faults > 0, "the fault oracle never checked a page");
    assert!(dirty > 0, "the dirty oracle never checked a page");
    assert!(
        skipped > 0,
        "certificates never skipped a baseline snapshot"
    );
    assert!(
        savings >= 6,
        "only {savings} workloads showed wire savings (need >= 6)"
    );
}

/// Debug-build subset: a third of the suite plus chess, fast link, the
/// off/history extremes. Same assertions, smaller vacuity floor.
#[test]
fn certificate_smoke() {
    let mut apps = sweep_apps();
    let chess = apps.pop().expect("chess is last");
    apps.truncate(5);
    apps.push(chess);
    let (skipped, faults, dirty, savings) =
        run_sweep(apps, &[false], &[StreamMode::Off, StreamMode::History]);
    assert!(faults > 0, "the fault oracle never checked a page");
    assert!(dirty > 0, "the dirty oracle never checked a page");
    assert!(
        skipped > 0,
        "certificates never skipped a baseline snapshot"
    );
    assert!(savings >= 3, "only {savings} workloads showed wire savings");
}

#[test]
fn modref_rounds_stay_bounded_across_the_suite() {
    // Regression guard on the interprocedural solver: the sorted/deduped
    // points-to sets and SCC-ordered propagation keep the round count
    // small even on the deepest call graphs (observed max: 11). A jump
    // past the per-SCC widening budget means convergence regressed.
    let mut max_rounds = 0u32;
    let mut max_name = String::new();
    for (name, app, _input) in sweep_apps() {
        let rounds = app.plan.stats.modref_rounds;
        assert!(rounds > 0, "{name}: solver reported zero rounds");
        if rounds > max_rounds {
            max_rounds = rounds;
            max_name = name;
        }
    }
    assert!(
        max_rounds <= 64,
        "{max_name}: mod/ref solver needed {max_rounds} rounds (budget 64)"
    );
}
